"""Mirroring plans for Pregel+(mirror).

Pregel+'s mirroring mechanism (Section 2.2 of the paper) copies each
high-degree vertex onto every machine that holds at least one of its
neighbours; the copies ("mirrors") forward messages locally. The effect
on network traffic: a broadcast from a mirrored vertex costs one message
per *mirror machine* instead of one per neighbour, flattening the skew of
hub vertices. :class:`MirrorPlan` precomputes, per vertex, the number of
remote machines its broadcast must reach under a given partition, both
with and without mirroring, so engines can account message volumes with
one vectorised lookup.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.csr import Graph, iter_row_blocks, streaming_block_arcs
from repro.graph.partition import Partition
from repro.perf import timings
from repro.perf.cache import get_cache

#: Default degree above which Pregel+ creates mirrors. The Pregel+ paper
#: tunes this per graph; the commonly cited effective threshold is around
#: the average degree times a small constant.
DEFAULT_DEGREE_THRESHOLD = 100


@dataclass(frozen=True)
class MirrorPlan:
    """Precomputed routing costs for a graph under a partition.

    Attributes
    ----------
    mirrored:
        boolean mask of vertices that have mirrors (degree > threshold).
    remote_machines:
        per-vertex count of *other* machines containing ≥1 neighbour —
        the network messages one broadcast costs for a mirrored vertex.
    remote_neighbors:
        per-vertex count of neighbours on other machines — the network
        messages one broadcast costs for an unmirrored vertex.
    local_neighbors:
        per-vertex count of neighbours co-located with the vertex.
    degree_threshold:
        threshold used to build the plan.
    num_mirrors:
        total mirror copies created (Σ remote_machines over mirrored
        vertices); adds to per-machine state memory.
    """

    mirrored: np.ndarray
    remote_machines: np.ndarray
    remote_neighbors: np.ndarray
    local_neighbors: np.ndarray
    degree_threshold: int
    num_mirrors: int

    @property
    def num_mirrored_vertices(self) -> int:
        return int(np.count_nonzero(self.mirrored))

    def broadcast_network_messages(self) -> np.ndarray:
        """Per-vertex network message count for one broadcast round.

        Mirrored vertices pay one message per remote mirror machine;
        unmirrored vertices pay one per remote neighbour.
        """
        return np.where(
            self.mirrored, self.remote_machines, self.remote_neighbors
        )

    def skew_reduction(self) -> float:
        """Total broadcast traffic saved by mirroring, as a fraction.

        Compares network messages for one all-vertex broadcast with and
        without mirroring. Returns 0.0 for graphs with no mirrored
        vertices.
        """
        without = float(self.remote_neighbors.sum())
        if without == 0.0:
            return 0.0
        with_mirrors = float(self.broadcast_network_messages().sum())
        return 1.0 - with_mirrors / without


def build_mirror_plan(
    graph: Graph,
    partition: Partition,
    degree_threshold: int = DEFAULT_DEGREE_THRESHOLD,
) -> MirrorPlan:
    """Build a :class:`MirrorPlan` for ``graph`` under ``partition``.

    Memoised in the shared artifact cache, keyed by the graph's content
    fingerprint plus a digest of the partition's owner array (not the
    strategy name, so hand-built partitions can never collide).
    """
    if degree_threshold < 0:
        raise ConfigurationError("degree_threshold must be non-negative")
    owner_digest = hashlib.blake2b(
        partition.owner.tobytes(), digest_size=16
    ).hexdigest()

    def build() -> MirrorPlan:
        with timings.span("mirror-plan"):
            return _build_mirror_plan(graph, partition, degree_threshold)

    return get_cache().get_or_build(
        (
            "mirror-plan",
            graph.fingerprint,
            owner_digest,
            int(partition.num_machines),
            int(degree_threshold),
        ),
        build,
    )


def _build_mirror_plan(
    graph: Graph,
    partition: Partition,
    degree_threshold: int,
) -> MirrorPlan:
    n = graph.num_vertices
    degrees = np.diff(graph.indptr)
    owner = partition.owner
    num_machines = partition.num_machines

    block_arcs = streaming_block_arcs(graph)
    if block_arcs is None:
        src_per_arc = np.repeat(np.arange(n, dtype=np.int64), degrees)
        dst_owner_per_arc = (
            partition.arc_dst_owner
            if partition.arc_dst_owner is not None
            else owner[graph.indices]
        )
        src_owner_per_arc = owner[src_per_arc]
        is_remote = dst_owner_per_arc != src_owner_per_arc

        remote_neighbors = np.bincount(
            src_per_arc, weights=is_remote, minlength=n
        ).astype(np.int64)

        # Distinct remote machines per source: count unique
        # (src, dst_owner) pairs restricted to remote arcs.
        remote_pairs = (
            src_per_arc[is_remote] * np.int64(num_machines)
            + dst_owner_per_arc[is_remote]
        )
        unique_pairs = np.unique(remote_pairs)
        remote_machines = np.bincount(
            (unique_pairs // num_machines).astype(np.int64), minlength=n
        ).astype(np.int64)
    else:
        # Mapped graphs: stream the plan in CSR row blocks so no O(m)
        # per-arc array is ever resident. Bit-identical to the
        # monolithic pass: per-block remote counts are exact integers
        # (the block sums equal the global bincount), and the
        # (src, dst_owner) pair sets of different blocks are *disjoint*
        # — blocks partition the source rows — so per-block uniques add
        # up to exactly the global unique-pair tally.
        remote_neighbors = np.zeros(n, dtype=np.int64)
        remote_machines = np.zeros(n, dtype=np.int64)
        for lo, hi in iter_row_blocks(graph.indptr, block_arcs):
            a, b = int(graph.indptr[lo]), int(graph.indptr[hi])
            if a == b:
                continue
            blk_src = np.repeat(
                np.arange(lo, hi, dtype=np.int64), degrees[lo:hi]
            )
            blk_dst_owner = owner[np.asarray(graph.indices[a:b])]
            is_remote = blk_dst_owner != owner[blk_src]
            remote_neighbors[lo:hi] += np.bincount(
                blk_src[is_remote] - lo, minlength=hi - lo
            )
            remote_pairs = (
                blk_src[is_remote] * np.int64(num_machines)
                + blk_dst_owner[is_remote]
            )
            unique_pairs = np.unique(remote_pairs)
            remote_machines[lo:hi] += np.bincount(
                (unique_pairs // num_machines).astype(np.int64) - lo,
                minlength=hi - lo,
            )
    local_neighbors = degrees - remote_neighbors

    mirrored = degrees > degree_threshold
    num_mirrors = int(remote_machines[mirrored].sum())
    return MirrorPlan(
        mirrored=mirrored,
        remote_machines=remote_machines,
        remote_neighbors=remote_neighbors,
        local_neighbors=local_neighbors,
        degree_threshold=degree_threshold,
        num_mirrors=num_mirrors,
    )
