"""Pooled scratch arenas for per-round kernel buffers.

Every ``_advance`` round of the frontier kernels used to allocate a
fresh set of candidate-length arrays (composite keys, gathered values,
boundary masks, reduction outputs). On the steady state those arrays
have near-constant sizes round over round, so the allocations — and the
page faults that come with them — are pure overhead. :class:`ScratchArena`
extends the grow-only ``arange`` trick of
:class:`repro.graph.csr.FrontierScratch` into a general pool:

* **size-classed** — buffers live in power-of-two byte classes, so a
  request is served by any free buffer of its class regardless of dtype
  or exact length (a ``take`` returns a view of the right length);
* **generation-tagged** — :meth:`new_round` advances a generation
  counter; a buffer handed out at generation ``g`` returns to the free
  pool only once the arena reaches generation ``g + KEEPALIVE``.  With
  the default ``KEEPALIVE = 2`` a round's outputs stay valid through
  the *next* round, which is exactly the lifetime of a frontier array:
  kernels rebuild their frontier every round, so by the time a buffer
  is recycled nothing live can reference it (asserted by
  ``tests/graph/test_arena.py``).

The engine creates one arena per job and threads it through every
kernel batch (:meth:`repro.tasks.base.TaskSpec.make_kernel`), so batch
boundaries reuse the same pool too.

The block-streaming kernels (memory-mapped graphs under a ``--max-ram``
budget) call :meth:`new_round` once per *frontier block* rather than
once per round: with ``KEEPALIVE = 2`` the pool's resident footprint
stays at roughly two blocks' worth of buffers however many blocks a
round streams — the arena is what makes the per-block working set a
bound instead of a high-water mark. :meth:`pool_bytes` reports that
footprint for the memory accounting (:mod:`repro.perf.memory`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ScratchArena"]

#: Smallest size class in bytes; tiny requests share one class.
_MIN_CLASS_BYTES = 256


class ScratchArena:
    """A size-classed, generation-tagged pool of reusable numpy buffers.

    Lifecycle contract: call :meth:`new_round` once at the top of every
    kernel round; arrays obtained from :meth:`take` remain valid for the
    round they were taken in **and** the following round (``KEEPALIVE``
    generations), after which their backing buffer may be handed out
    again. Arrays that must outlive that window belong to the caller —
    copy them out (``np.copy``) before the window closes.
    """

    #: Generations a handed-out buffer survives before recycling. Two
    #: generations make arena-backed frontier arrays (built in round N,
    #: consumed in round N + 1, rebuilt before round N + 2) safe without
    #: any copies.
    KEEPALIVE = 2

    __slots__ = (
        "_free",
        "_inuse",
        "_generation",
        "_iota",
        "allocations",
        "reuses",
    )

    def __init__(self) -> None:
        self._free: Dict[int, List[np.ndarray]] = {}
        # (generation handed out, size class, raw uint8 buffer)
        self._inuse: List[Tuple[int, int, np.ndarray]] = []
        self._generation = 0
        self._iota = np.empty(0, dtype=np.int64)
        #: fresh buffers created / requests served from the pool —
        #: steady-state rounds should be all reuses (asserted in tests).
        self.allocations = 0
        self.reuses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def new_round(self) -> None:
        """Advance one generation; recycle buffers past their keepalive."""
        self._generation += 1
        if not self._inuse:
            return
        horizon = self._generation - self.KEEPALIVE
        survivors: List[Tuple[int, int, np.ndarray]] = []
        for record in self._inuse:
            if record[0] <= horizon:
                self._free.setdefault(record[1], []).append(record[2])
            else:
                survivors.append(record)
        self._inuse = survivors

    # ------------------------------------------------------------------
    # Buffers
    # ------------------------------------------------------------------
    def take(self, size: int, dtype=np.int64) -> np.ndarray:
        """An uninitialised length-``size`` array valid for KEEPALIVE rounds."""
        dtype = np.dtype(dtype)
        if size == 0:
            return np.empty(0, dtype=dtype)
        nbytes = int(size) * dtype.itemsize
        size_class = _MIN_CLASS_BYTES
        while size_class < nbytes:
            size_class <<= 1
        pool = self._free.get(size_class)
        if pool:
            raw = pool.pop()
            self.reuses += 1
        else:
            raw = np.empty(size_class, dtype=np.uint8)
            self.allocations += 1
        self._inuse.append((self._generation, size_class, raw))
        return raw[:nbytes].view(dtype)

    def pool_bytes(self) -> int:
        """Resident footprint of the pool: free + in-use buffer bytes
        (excluding the shared ``arange`` cache). Streaming rounds watch
        this stay flat across blocks; it only steps up when a block is
        larger than anything the pool has served before."""
        free = sum(
            buf.nbytes for bufs in self._free.values() for buf in bufs
        )
        return free + sum(record[2].nbytes for record in self._inuse)

    def arange(self, size: int) -> np.ndarray:
        """A ``[0, size)`` int64 arange view from a grow-only cached buffer
        (the :class:`~repro.graph.csr.FrontierScratch` trick, kept
        separate from the generational pool because its contents are
        immutable and shared by every round)."""
        if self._iota.size < size:
            self._iota = np.arange(
                max(size, 2 * self._iota.size), dtype=np.int64
            )
        return self._iota[:size]
