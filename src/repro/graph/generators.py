"""Synthetic graph generators.

The paper benchmarks on six public SNAP graphs. Those graphs are not
available offline, so :mod:`repro.graph.datasets` instantiates *profiles*
(node count, edge count, degree skew) through the generators in this
module. The central generator is :func:`chung_lu`, which produces graphs
with a prescribed expected degree sequence — enough to reproduce the
degree-skew effects the paper's mirroring mechanism depends on. Simpler
deterministic generators (chain, star, grid, complete) are used heavily by
the test-suite because their task results are known in closed form.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.build import from_edges
from repro.graph.csr import Graph
from repro.rng import SeedLike, make_rng

#: Default arcs per block yielded by :func:`chung_lu_edge_blocks`.
DEFAULT_BLOCK_EDGES = 1 << 21


def erdos_renyi(
    n: int,
    avg_degree: float,
    directed: bool = True,
    seed: SeedLike = None,
    name: str = "erdos-renyi",
) -> Graph:
    """G(n, m)-style random graph with ``n`` vertices and ``n * avg_degree``
    arcs sampled uniformly with replacement (then de-duplicated)."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    if avg_degree < 0:
        raise ConfigurationError("avg_degree must be non-negative")
    rng = make_rng(seed, label="erdos-renyi")
    num_arcs = int(round(n * avg_degree))
    src = rng.integers(0, n, size=num_arcs, dtype=np.int64)
    dst = rng.integers(0, n, size=num_arcs, dtype=np.int64)
    return from_edges(
        src,
        dst,
        num_vertices=n,
        directed=directed,
        dedup=True,
        drop_self_loops=True,
        name=name,
    )


def power_law_degrees(
    n: int, avg_degree: float, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample an expected-degree sequence with a power-law tail.

    Degrees follow a bounded Pareto shape with the given ``exponent``,
    rescaled so the mean matches ``avg_degree``. The maximum expected
    degree is capped at ``n - 1``.
    """
    if exponent <= 1.0:
        raise ConfigurationError("power-law exponent must exceed 1")
    raw = (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    raw *= avg_degree / raw.mean()
    return np.minimum(raw, float(max(n - 1, 1)))


def chung_lu(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    directed: bool = True,
    seed: SeedLike = None,
    name: str = "chung-lu",
) -> Graph:
    """Chung-Lu style random graph with a power-law expected degree sequence.

    Arcs are sampled by drawing both endpoints proportionally to the
    expected degree weights, which yields the correlated hub structure of
    social graphs (hubs attract both in- and out-edges). Duplicate arcs
    and self loops are removed, so realised degree means run slightly
    below the target; dataset profiles compensate by oversampling.
    """
    rng, probs, num_arcs = _chung_lu_params(n, avg_degree, exponent, seed)
    src = rng.choice(n, size=num_arcs, p=probs).astype(np.int64)
    dst = rng.choice(n, size=num_arcs, p=probs).astype(np.int64)
    return from_edges(
        src,
        dst,
        num_vertices=n,
        directed=directed,
        dedup=True,
        drop_self_loops=True,
        name=name,
    )


def _chung_lu_params(
    n: int, avg_degree: float, exponent: float, seed: SeedLike
) -> Tuple[np.random.Generator, np.ndarray, int]:
    """Shared setup for :func:`chung_lu` and :func:`chung_lu_edge_blocks`.

    Returns the generator (positioned right after the degree draws), the
    endpoint sampling distribution, and the oversampled arc count. Both
    callers must consume the stream identically from here for their
    outputs to match bit for bit.
    """
    if n <= 1:
        raise ConfigurationError("n must be at least 2")
    rng = make_rng(seed, label="chung-lu")
    weights = power_law_degrees(n, avg_degree, exponent, rng)
    probs = weights / weights.sum()
    # Oversample ~12% to compensate for dedup/self-loop losses.
    num_arcs = int(round(n * avg_degree * 1.12))
    return rng, probs, num_arcs


def _advanced_clone(
    rng: np.random.Generator, draws: int
) -> Optional[np.random.Generator]:
    """Clone ``rng`` skipped ``draws`` double-draws ahead, or ``None``
    when the bit generator cannot advance in O(1) (non-PCG streams)."""
    bit_gen = rng.bit_generator
    if not hasattr(bit_gen, "advance"):
        return None
    clone = type(bit_gen)()
    clone.state = bit_gen.state
    clone.advance(draws)
    return np.random.Generator(clone)


def chung_lu_edge_blocks(
    n: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: SeedLike = None,
    block_edges: int = DEFAULT_BLOCK_EDGES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield the exact arc stream of :func:`chung_lu` in bounded blocks.

    The bit-for-bit contract: concatenating the yielded ``(src, dst)``
    blocks reproduces the monolithic ``rng.choice`` draws of
    :func:`chung_lu` exactly, so an out-of-core build from these blocks
    is byte-identical to the in-RAM graph. Two stream properties make
    that possible without materialising either endpoint array:

    * ``Generator.choice`` with a probability vector consumes exactly
      one uniform double per sample, so chunked draws concatenate to
      the monolithic draw;
    * PCG64's O(1) ``advance`` lets a cloned generator start the
      destination stream ``num_arcs`` draws ahead, so source and
      destination blocks interleave while each generator still emits
      its stream sequentially.

    A bit generator without ``advance`` falls back to materialising
    both endpoint arrays once and slicing (correct, not out-of-core);
    :func:`repro.rng.make_rng` always returns PCG64, so the fallback is
    never hit in practice.
    """
    if block_edges < 1:
        raise ConfigurationError("block_edges must be positive")
    rng, probs, num_arcs = _chung_lu_params(n, avg_degree, exponent, seed)
    block = int(block_edges)
    if num_arcs == 0:
        return
    dst_rng = _advanced_clone(rng, num_arcs)
    if dst_rng is None:
        src = rng.choice(n, size=num_arcs, p=probs).astype(np.int64)
        dst = rng.choice(n, size=num_arcs, p=probs).astype(np.int64)
        for start in range(0, num_arcs, block):
            yield src[start : start + block], dst[start : start + block]
        return
    for start in range(0, num_arcs, block):
        size = min(block, num_arcs - start)
        src = rng.choice(n, size=size, p=probs).astype(np.int64)
        dst = dst_rng.choice(n, size=size, p=probs).astype(np.int64)
        yield src, dst


def chain(n: int, directed: bool = False, weight: Optional[float] = None) -> Graph:
    """Path graph ``0 - 1 - ... - (n-1)``; handy for distance tests."""
    if n <= 0:
        raise ConfigurationError("n must be positive")
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    weights = None if weight is None else np.full(n - 1, weight)
    return from_edges(
        src, dst, weights, num_vertices=n, directed=directed, name=f"chain-{n}"
    )


def star(n: int, directed: bool = False) -> Graph:
    """Star with centre 0 and ``n - 1`` leaves; the extreme skew case."""
    if n <= 1:
        raise ConfigurationError("star needs at least 2 vertices")
    src = np.zeros(n - 1, dtype=np.int64)
    dst = np.arange(1, n, dtype=np.int64)
    return from_edges(src, dst, num_vertices=n, directed=directed, name=f"star-{n}")


def complete(n: int, directed: bool = True) -> Graph:
    """Complete graph on ``n`` vertices (no self loops)."""
    if n <= 1:
        raise ConfigurationError("complete graph needs at least 2 vertices")
    grid_src, grid_dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = grid_src != grid_dst
    return from_edges(
        grid_src[mask].astype(np.int64),
        grid_dst[mask].astype(np.int64),
        num_vertices=n,
        directed=directed,
        name=f"complete-{n}",
    )


def grid_2d(rows: int, cols: int, directed: bool = False) -> Graph:
    """2-D lattice; used to exercise diameter-heavy (many-round) workloads."""
    if rows <= 0 or cols <= 0:
        raise ConfigurationError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, vert_src])
    dst = np.concatenate([horiz_dst, vert_dst])
    return from_edges(
        src,
        dst,
        num_vertices=rows * cols,
        directed=directed,
        name=f"grid-{rows}x{cols}",
    )
