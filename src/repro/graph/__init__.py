"""Graph substrate: CSR storage, builders, generators, datasets, partitioning.

The public surface re-exported here is what the engines and tasks consume:

* :class:`Graph` — immutable CSR adjacency with optional edge weights.
* :func:`from_edges` / :func:`from_edge_list` — builders.
* :mod:`repro.graph.generators` — synthetic generators (power law, ER, ...).
* :mod:`repro.graph.datasets` — the six paper dataset profiles.
* :mod:`repro.graph.partition` — hash/range/edge partitioners.
* :mod:`repro.graph.mirrors` — mirroring plans for Pregel+(mirror).
"""

from repro.graph.build import from_edge_list, from_edges
from repro.graph.csr import Graph
from repro.graph.datasets import DatasetProfile, PAPER_DATASETS, load_dataset
from repro.graph.mirrors import MirrorPlan, build_mirror_plan
from repro.graph.partition import Partition, partition_graph

__all__ = [
    "Graph",
    "from_edges",
    "from_edge_list",
    "DatasetProfile",
    "PAPER_DATASETS",
    "load_dataset",
    "Partition",
    "partition_graph",
    "MirrorPlan",
    "build_mirror_plan",
]
