"""Figure 12 — the tuning case study: Optimized vs Full-Parallelism.

BPPR and MSSP on DBLP in Pregel+ over 2/4/8 machines. For each machine
count the auto-tuner trains once on light probe workloads, then plans a
decreasing batch schedule per workload (Section 5, Equations 1-6).
Paper findings checked:

* the Optimized scheme is stable across workloads while Full-Parallelism
  degrades sharply (often to overload) as the workload grows;
* planned schedules are monotonically decreasing (later batches carry
  less because residual memory accumulates) — the paper's example for
  (BPPR, 4 machines, W=5120) is [2747, 1388, 644, 266, 75].
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for
from repro.tuning.autotuner import AutoTuner

EXPERIMENT_ID = "fig12"
TITLE = "Tuning Pregel+ with the cost model: Optimized vs Full-Parallelism"

#: Workload sweeps per machine count, stretched past the memory wall so
#: the Full-Parallelism degradation is visible at simulation scale.
BPPR_PANELS: Dict[int, Tuple[int, ...]] = {
    2: (1280, 1792, 2304, 2816, 3328),
    4: (2560, 3584, 4608, 5632, 6656),
    8: (5120, 7168, 9216, 11264, 13312),
}
MSSP_PANELS: Dict[int, Tuple[int, ...]] = {
    2: (136, 200, 264, 328),
    4: (384, 512, 640, 768),
    8: (832, 1088, 1344, 1600),
}


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "task",
            "machines",
            "workload",
            "full-parallelism",
            "optimized",
            "schedule",
        ],
        paper_summary=(
            "the Optimized scheme is very stable with respect to workload "
            "and machines, whereas Full-Parallelism easily goes to very "
            "high cost when workload increases"
        ),
    )

    stability: List[bool] = []
    decreasing: List[bool] = []
    wins: List[bool] = []

    for task_name, panels in (("bppr", BPPR_PANELS), ("mssp", MSSP_PANELS)):
        machine_counts = list(panels) if not config.quick else [4]
        for machines in machine_counts:
            cluster = galaxy8(scale=config.scale).with_machines(machines)
            tuner = AutoTuner.for_engine(
                "pregel+",
                cluster,
                lambda w, t=task_name: task_for(graph, t, w, config.quick),
                seed=config.seed,
            )
            workloads = panels[machines]
            if config.quick:
                workloads = workloads[:: max(1, len(workloads) - 1)]
            optimized_times = []
            for workload in workloads:
                report = tuner.run(workload)
                optimized_times.append(report.optimized.seconds)
                schedule = report.schedule
                result.add_row(
                    task=task_name.upper(),
                    machines=machines,
                    workload=workload,
                    **{
                        "full-parallelism": report.full_parallelism.time_label(),
                        "optimized": report.optimized.time_label(),
                        "schedule": "["
                        + ", ".join(f"{w:.0f}" for w in schedule)
                        + "]",
                    },
                )
                decreasing.append(
                    all(a >= b for a, b in zip(schedule, schedule[1:]))
                )
                if (
                    report.full_parallelism.overloaded
                    and not report.optimized.overloaded
                ):
                    wins.append(True)
                elif not report.optimized.overloaded:
                    wins.append(
                        report.optimized.seconds
                        <= report.full_parallelism.seconds * 1.05
                    )
                else:
                    wins.append(False)
            if len(optimized_times) >= 2 and min(optimized_times) > 0:
                stability.append(
                    max(optimized_times) / min(optimized_times) < 12.0
                )

    result.claim(
        "Optimized never loses to Full-Parallelism (within 5%)",
        all(wins),
    )
    result.claim(
        "planned schedules decrease monotonically (residual memory)",
        all(decreasing),
    )
    result.claim(
        "Optimized times stay stable across each workload sweep",
        all(stability) if stability else False,
    )
    return result
