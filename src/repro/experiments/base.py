"""Shared experiment plumbing: configs, result tables, formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.graph.datasets import DEFAULT_SCALE
from repro.rng import DEFAULT_SEED

#: The doubling batch axis used throughout the paper's figures.
DOUBLING_BATCHES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment run.

    ``scale`` divides dataset node counts and cluster capacities alike;
    ``quick`` shrinks sweeps (fewer batch counts / machine counts) for
    smoke tests, keeping the headline comparison intact. ``jobs``
    fans independent runs out over worker processes (0 = one per CPU,
    1 = serial); results are byte-identical either way because every
    run derives its RNG stream from the explicit seed. ``preempt``
    extends the throughput experiment with the FIFO-versus-preemptive
    serving comparison (``vcrepro experiment throughput --preempt``);
    ``multi_tenant`` adds the single-tenant-versus-multi-tenant A/B
    (tenant quotas, Table-4 engine routing, and the content-keyed
    result cache; ``vcrepro experiment throughput --multi-tenant``).
    ``calibrate`` adds the static-versus-calibrated serving A/B
    (online ask-tell cost-model refits on a deadline-bearing stream;
    ``vcrepro experiment throughput --calibrate``).
    """

    scale: int = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    quick: bool = False
    jobs: int = 1
    preempt: bool = False
    multi_tenant: bool = False
    calibrate: bool = False


@dataclass
class ExperimentResult:
    """A reproduced figure/table: rows of measurements plus context.

    ``rows`` are dictionaries sharing ``columns`` as keys. ``claims``
    records the paper's qualitative claims this experiment checks, each
    mapped to a bool measured outcome (filled by ``check()`` logic in
    the experiment module).
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_summary: str = ""
    notes: str = ""
    claims: Dict[str, bool] = field(default_factory=dict)
    #: side-channel payloads (e.g. the throughput experiment's
    #: resilience counters) that callers persist outside the table.
    extras: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append one table row (column -> value)."""
        self.rows.append(values)

    def claim(self, description: str, holds: bool) -> None:
        """Record one qualitative paper claim and whether we measured it."""
        self.claims[description] = bool(holds)

    @property
    def claims_held(self) -> int:
        return sum(1 for v in self.claims.values() if v)

    def all_claims_hold(self) -> bool:
        """True when every recorded paper claim was measured to hold."""
        return all(self.claims.values()) if self.claims else True

    def to_text(self) -> str:
        """Render the result as an aligned text table with claim list."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_summary:
            lines.append(f"paper: {self.paper_summary}")
        lines.append(format_table(self.columns, self.rows))
        if self.claims:
            lines.append("claims:")
            for text, holds in self.claims.items():
                status = "HOLDS" if holds else "DIFFERS"
                lines.append(f"  [{status}] {text}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the result as Markdown (used for EXPERIMENTS.md)."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        if self.paper_summary:
            lines += [f"*Paper:* {self.paper_summary}", ""]
        header = "| " + " | ".join(self.columns) + " |"
        divider = "|" + "|".join("---" for _ in self.columns) + "|"
        lines += [header, divider]
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(_cell(row.get(col, "")) for col in self.columns)
                + " |"
            )
        if self.claims:
            lines.append("")
            for text, holds in self.claims.items():
                mark = "✅" if holds else "⚠️"
                lines.append(f"- {mark} {text}")
        if self.notes:
            lines += ["", f"*Notes:* {self.notes}"]
        lines.append("")
        return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def format_table(
    columns: Sequence[str], rows: Sequence[Dict[str, Any]]
) -> str:
    """Plain-text aligned table."""
    widths = {col: len(col) for col in columns}
    rendered: List[Dict[str, str]] = []
    for row in rows:
        out = {col: _cell(row.get(col, "")) for col in columns}
        rendered.append(out)
        for col in columns:
            widths[col] = max(widths[col], len(out[col]))
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    body = [
        "  ".join(row[col].ljust(widths[col]) for col in columns)
        for row in rendered
    ]
    return "\n".join([header, sep] + body)


def time_cell(metrics) -> str:
    """Time string the way the paper prints it."""
    return metrics.time_label()


def best_finite_batch(
    runs: Sequence, batch_counts: Optional[Sequence[int]] = None
) -> Optional[int]:
    """Batch count of the fastest non-overloaded run, or None."""
    finite = [m for m in runs if not m.overloaded]
    if not finite:
        return None
    best = min(finite, key=lambda m: m.seconds)
    return best.num_batches
