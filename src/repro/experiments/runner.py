"""Experiment registry and batch runner."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    faults,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table2,
    table3,
    table4,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.perf.parallel import parallel_map

#: id -> run callable, in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table4": table4.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "faults": faults.run,
    "ablations": ablations.run,
}


def list_experiments() -> List[str]:
    """Experiment ids in the paper's presentation order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentResult:
    """Run one experiment by id ("fig2", "table3", ...)."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return EXPERIMENTS[key](config or ExperimentConfig())


def run_all(
    config: Optional[ExperimentConfig] = None,
    only: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run every (or the selected) experiment and return the results.

    ``jobs`` (default: ``config.jobs``) fans experiments out over
    worker processes; order and content of the returned results are
    identical to the serial loop.
    """
    config = config or ExperimentConfig()
    if jobs is None:
        jobs = config.jobs
    ids = list(only) if only is not None else list(EXPERIMENTS)
    return parallel_map(
        run_experiment, [(eid, config) for eid in ids], jobs=jobs
    )
