"""Experiment registry and batch runner."""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    faults,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table2,
    table3,
    table4,
    throughput,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.perf.parallel import parallel_map, resolve_jobs

#: id -> run callable, in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table4": table4.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "faults": faults.run,
    "ablations": ablations.run,
    "throughput": throughput.run,
}


def list_experiments() -> List[str]:
    """Experiment ids in the paper's presentation order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentResult:
    """Run one experiment by id ("fig2", "table3", ...)."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return EXPERIMENTS[key](config or ExperimentConfig())


def experiment_datasets(
    ids: Iterable[str], config: ExperimentConfig
) -> Tuple[str, ...]:
    """Distinct dataset names the given experiments will load, in first-
    use order. Modules declare theirs via a ``datasets_used(config)``
    hook; everything else defaults to DBLP."""
    names: List[str] = []
    for eid in ids:
        run_fn = EXPERIMENTS.get(eid.strip().lower())
        if run_fn is None:
            continue
        module = sys.modules[run_fn.__module__]
        hook = getattr(module, "datasets_used", None)
        used = hook(config) if hook is not None else ("dblp",)
        names.extend(name for name in used if name not in names)
    return tuple(names)


def _shared_graph_pool_args(
    ids: List[str], config: ExperimentConfig, workers: int
) -> dict:
    """Prebuild the experiments' datasets and export them into shared
    memory, returning the pool initializer kwargs for ``parallel_map``.

    Each distinct graph crosses to the workers at most once (as a
    zero-copy segment); an export failure just means workers rebuild
    from the artifact cache, so this never gates correctness. On
    multi-node topologies the export offers per-node replicas
    (:mod:`repro.perf.numa` decides replicate vs interleave per graph)
    so pinned workers read node-locally.
    """
    if workers <= 1 or len(ids) <= 1:
        return {}
    from repro.graph.datasets import load_dataset
    from repro.perf import numa, shm

    registry = shm.get_registry()
    nodes = numa.replication_nodes()
    for name in experiment_datasets(ids, config):
        graph = load_dataset(name, scale=config.scale)
        registry.export(
            ("dataset", name, config.scale, None), graph, nodes=nodes
        )
    table = registry.handle_table()
    if not table:
        return {}
    return {
        "initializer": shm.install_worker_table,
        "initargs": (table,),
    }


def run_all(
    config: Optional[ExperimentConfig] = None,
    only: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run every (or the selected) experiment and return the results.

    ``jobs`` (default: ``config.jobs``) fans experiments out over
    worker processes; order and content of the returned results are
    identical to the serial loop. With multiple workers, the datasets
    the selected experiments need are prebuilt once and shipped to the
    pool via shared memory (:mod:`repro.perf.shm`).
    """
    config = config or ExperimentConfig()
    if jobs is None:
        jobs = config.jobs
    ids = list(only) if only is not None else list(EXPERIMENTS)
    pool_args = _shared_graph_pool_args(ids, config, resolve_jobs(jobs))
    return parallel_map(
        run_experiment, [(eid, config) for eid in ids], jobs=jobs, **pool_args
    )
