"""Figure 6 — per-round message counts and the superlinear time jump.

The statistics behind Figure 4: per-round messages scale ~linearly with
the workload (63.7M -> 633.2M for 10x) and ~1/k with the batch count,
while the running time scales *super*-linearly once the congestion
threshold is hit (173.3 s -> 6641.5 s for the same 10x at 1 batch).
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, sweep_batches, task_for
from repro.units import format_count

EXPERIMENT_ID = "fig6"
TITLE = "Messages per round vs time: the congestion threshold (DBLP, Galaxy-8)"

WORKLOADS = (1024, 10240, 12288)
BATCHES = (1, 2, 4)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    batches = BATCHES if not config.quick else (1, 2)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["workload", "batches", "msgs/round", "time", "overloaded"],
        paper_summary=(
            "10x workload -> ~10x messages per round but >>10x time at "
            "1 batch; 2 batches halve the congestion and restore ~linear "
            "scaling (173.3/6641.5 vs 178.3/1819.4)"
        ),
        notes=(
            "message counts are simulation-scale (divide paper counts by "
            "the scale factor); ratios are directly comparable"
        ),
    )

    measured = {}
    for workload in WORKLOADS:
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda w=workload: task_for(graph, "bppr", w, config.quick),
            batches,
            config.seed,
            jobs=config.jobs,
        )
        for metrics in runs:
            measured[(workload, metrics.num_batches)] = metrics
            result.add_row(
                workload=workload,
                batches=metrics.num_batches,
                **{"msgs/round": format_count(metrics.messages_per_round)},
                time=metrics.time_label(),
                overloaded=metrics.overloaded,
            )

    light_1 = measured[(1024, 1)]
    heavy_1 = measured[(10240, 1)]
    heavy_2 = measured[(10240, 2)]
    light_2 = measured[(1024, 2)]

    # Overloaded runs stop early, which inflates their per-round average;
    # check the linear message scaling on the completed 2-batch runs.
    msg_ratio = (
        heavy_2.messages_per_round / light_2.messages_per_round
        if light_2.messages_per_round
        else 0.0
    )
    result.claim(
        "messages per round scale ~10x with a 10x workload (2 batches)",
        6.0 <= msg_ratio <= 14.0,
    )
    heavy_1_time = 6000.0 if heavy_1.overloaded else heavy_1.seconds
    result.claim(
        "time scales >>10x with a 10x workload at 1 batch (congestion)",
        heavy_1_time / light_1.seconds > 15.0,
    )
    if not heavy_2.overloaded:
        result.claim(
            "at 2 batches the 10x workload costs ~10x time (linear regime)",
            5.0 <= heavy_2.seconds / light_2.seconds <= 15.0,
        )
    result.claim(
        "halving the per-round congestion (2 batches) removes the blowup",
        (not heavy_2.overloaded)
        and heavy_2.seconds < 0.5 * heavy_1_time,
    )
    return result
