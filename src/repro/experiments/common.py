"""Helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import ClusterSpec
from repro.experiments.base import DOUBLING_BATCHES, ExperimentConfig
from repro.graph.csr import Graph
from repro.graph.datasets import load_dataset
from repro.perf.parallel import parallel_map_fork
from repro.sim.metrics import JobMetrics
from repro.tasks.base import TaskSpec, make_task


def dataset(config: ExperimentConfig, name: str) -> Graph:
    """Load a paper dataset at the experiment's scale."""
    return load_dataset(name, scale=config.scale)


def batch_axis(
    config: ExperimentConfig, workload: float, full=DOUBLING_BATCHES
) -> List[int]:
    """The figure's batch axis, truncated for quick mode and so no batch
    is empty."""
    axis = [b for b in full if b <= workload]
    if config.quick:
        axis = [b for b in axis if b in (1, 4, 16)] or axis[:1]
    return axis


def sweep_batches(
    engine_name: str,
    cluster: ClusterSpec,
    task_factory: Callable[[], TaskSpec],
    batch_counts: Sequence[int],
    seed: int,
    jobs: Optional[int] = None,
) -> List[JobMetrics]:
    """Run one task under each batch count on one engine/cluster.

    ``jobs`` fans the batch counts out over forked worker processes
    (see :func:`repro.perf.parallel.parallel_map_fork`); every run
    seeds its own RNG stream, so results match the serial loop
    byte-for-byte regardless of worker count.
    """
    job = MultiProcessingJob(engine_name, cluster)
    counts = list(batch_counts)

    def run_one(index: int) -> JobMetrics:
        return job.run(
            task_factory(), num_batches=counts[index], seed=seed
        )

    return parallel_map_fork(run_one, len(counts), jobs=jobs)


def task_for(
    graph: Graph,
    task_name: str,
    workload: float,
    quick: bool = False,
    **params,
) -> TaskSpec:
    """Build a benchmark task with experiment-friendly defaults.

    Source-driven tasks get a sampling cap so sweeps stay fast; quick
    mode lowers it further.
    """
    if task_name in ("mssp", "bkhs"):
        params.setdefault("sample_limit", 16 if quick else 48)
    return make_task(task_name, graph, workload, **params)


def runs_by_batch(
    runs: Sequence[JobMetrics],
) -> Dict[int, JobMetrics]:
    """Index a sweep's runs by their batch count."""
    return {m.num_batches: m for m in runs}


def non_monotone(runs: Sequence[JobMetrics]) -> bool:
    """True when running time is not monotonically increasing with the
    batch count — i.e. Full-Parallelism is not optimal (overloaded runs
    count as slowest).

    Ranking compares ``(overloaded, seconds)`` so a finite run that
    happens to land exactly on the overload cutoff still ranks below an
    overloaded run instead of tying with it.
    """
    ordered = sorted(runs, key=lambda m: m.num_batches)
    ranks = [(m.overloaded, m.seconds) for m in ordered]
    return any(later < earlier for earlier, later in zip(ranks, ranks[1:]))


def full_parallelism_suboptimal(runs: Sequence[JobMetrics]) -> bool:
    """True when some multi-batch setting beats the 1-batch run."""
    ordered = {m.num_batches: m for m in runs}
    if 1 not in ordered:
        return False
    one = ordered[1]
    rest = [m for b, m in ordered.items() if b > 1]
    if not rest:
        return False
    best_rest = min(rest, key=lambda m: (m.overloaded, m.seconds))
    if one.overloaded and not best_rest.overloaded:
        return True
    return best_rest.seconds < one.seconds


def optimum_batches(runs: Sequence[JobMetrics]) -> Optional[int]:
    """Batch count of the fastest non-overloaded run."""
    finite = [m for m in runs if not m.overloaded]
    if not finite:
        return None
    return min(finite, key=lambda m: m.seconds).num_batches


def label_times(runs: Sequence[JobMetrics]) -> Dict[str, str]:
    """Column dict {"b=k": time label} for a batch sweep row."""
    return {f"b={m.num_batches}": m.time_label() for m in runs}


def settings_tuple(workload: float, machines: int, what: str) -> str:
    """The paper's "(Workload, #Machines, X)" legend string."""
    return f"({workload:g},{machines},{what})"
