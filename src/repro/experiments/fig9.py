"""Figure 9 — unequal two-batch splits are beneficial.

A fixed BPPR workload is split into two batches with varying
Δ = W1 − W2. The paper finds the optimum at Δ > 0 (front-loaded first
batch): the second batch starts with the first batch's residual memory
resident, so it must be lighter. Also reproduced: the two-batch
execution costs more than running the two halves as independent jobs
(the stacked right-hand bars), precisely because of the residual carry.
"""

from __future__ import annotations

from typing import List

from repro.batching.executor import MultiProcessingJob
from repro.batching.schemes import two_batches_delta
from repro.cluster.cluster import galaxy8, galaxy27
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for

EXPERIMENT_ID = "fig9"
TITLE = "Unequal two-batch splits (DBLP, BPPR)"

#: (cluster factory, total workload, delta grid) per panel.
PANELS = (
    ("galaxy-8", galaxy8, 12800, (-10240, -7680, -5120, -2560, 0, 2560, 5120, 7680, 10240)),
    ("galaxy-27", galaxy27, 40960, (-32768, -16384, 0, 8192, 16384, 24576, 32768)),
)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "cluster",
            "delta",
            "two-batch",
            "1st alone",
            "2nd alone",
            "sum alone",
        ],
        paper_summary=(
            "optimum near delta=+2560 on Galaxy-8 (W1 > W2); two-batch "
            "time exceeds the sum of the halves run separately (residual "
            "memory of batch 1 burdens batch 2)"
        ),
    )

    panels = PANELS if not config.quick else PANELS[:1]
    for cluster_name, factory, total, deltas in panels:
        cluster = factory(scale=config.scale)
        job = MultiProcessingJob("pregel+", cluster)
        if config.quick:
            deltas = tuple(d for d in deltas if d in (0, deltas[-1]))
        times: List[tuple] = []
        for delta in deltas:
            sizes = two_batches_delta(total, delta)
            task = task_for(graph, "bppr", total, config.quick)
            combined = job.run(task, batch_sizes=sizes, seed=config.seed)
            alone = []
            for size in sizes:
                solo_task = task_for(graph, "bppr", size, config.quick)
                alone.append(
                    job.run(solo_task, num_batches=1, seed=config.seed)
                )
            times.append((delta, combined, alone))
            result.add_row(
                cluster=cluster_name,
                delta=delta,
                **{
                    "two-batch": combined.time_label(),
                    "1st alone": alone[0].time_label(),
                    "2nd alone": alone[1].time_label(),
                    "sum alone": f"{alone[0].seconds + alone[1].seconds:.0f}s"
                    if not (alone[0].overloaded or alone[1].overloaded)
                    else "overload",
                },
            )

        finite = [
            (d, c) for d, c, _ in times if not c.overloaded
        ]
        if finite:
            best_delta = min(finite, key=lambda t: t[1].seconds)[0]
            result.claim(
                f"{cluster_name}: optimum at a positive delta (W1 > W2)",
                best_delta > 0,
            )
        balanced = next((c for d, c, _ in times if d == 0), None)
        if balanced is not None and not balanced.overloaded:
            alone0 = next(a for d, _, a in times if d == 0)
            if not (alone0[0].overloaded or alone0[1].overloaded):
                result.claim(
                    f"{cluster_name}: two-batch run costs more than the "
                    "halves run separately (residual carry)",
                    balanced.seconds
                    > alone0[0].seconds + alone0[1].seconds - 1e-9,
                )
    return result
