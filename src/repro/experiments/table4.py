"""Table 4 — GraphLab(sync) vs GraphLab(async): PageRank vs BPPR.

Machine sweep 1..16 on DBLP. Paper findings checked:

* PageRank: async beats sync, and the benefit grows with machines
  (barrier elimination);
* BPPR: async can be *worse* than sync, with the gap growing with both
  the workload and the machine count (workload-related traffic dominates,
  async cannot combine walk messages, distributed locking scales badly);
* bytes per machine: async moves more data than sync under heavy BPPR
  load (no combining).
"""

from __future__ import annotations

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for
from repro.tasks.pagerank import pagerank_task
from repro.units import format_bytes

EXPERIMENT_ID = "table4"
TITLE = "GraphLab sync vs async: PageRank vs BPPR (seconds / bytes-per-machine)"

MACHINES = (1, 2, 4, 8, 16)
BPPR_WORKLOADS = (8, 32, 128, 512)


def _bytes_per_machine(metrics) -> float:
    total_network_bytes = sum(
        r.bottleneck_bytes for b in metrics.batches for r in b.rounds
    )
    return total_network_bytes / 2.0  # in+out counted once


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    machines = MACHINES if not config.quick else (2, 16)
    workloads = BPPR_WORKLOADS if not config.quick else (512,)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["machines", "task", "sync", "async", "sync bytes", "async bytes"],
        paper_summary=(
            "PageRank: async 2.5x faster at 16 machines (9.6 vs 3.9 s); "
            "BPPR(512): async 2.8x slower at 16 machines (245 vs 88 s) "
            "with 6.4G vs 1.0G bytes per machine"
        ),
    )

    times = {}
    for m in machines:
        cluster = galaxy8(scale=config.scale).with_machines(m)
        sync_job = MultiProcessingJob("graphlab", cluster)
        async_job = MultiProcessingJob("graphlab(async)", cluster)

        sync_pr = sync_job.run(pagerank_task(graph), num_batches=1, seed=config.seed)
        async_pr = async_job.run(
            pagerank_task(graph), num_batches=1, seed=config.seed
        )
        times[("pr", "sync", m)] = sync_pr.seconds
        times[("pr", "async", m)] = async_pr.seconds
        result.add_row(
            machines=m,
            task="PageRank",
            sync=sync_pr.time_label(),
            **{
                "async": async_pr.time_label(),
                "sync bytes": format_bytes(_bytes_per_machine(sync_pr)),
                "async bytes": format_bytes(_bytes_per_machine(async_pr)),
            },
        )
        for workload in workloads:
            sync_run = sync_job.run(
                task_for(graph, "bppr", workload, config.quick),
                num_batches=1,
                seed=config.seed,
            )
            async_run = async_job.run(
                task_for(graph, "bppr", workload, config.quick),
                num_batches=1,
                seed=config.seed,
            )
            times[(workload, "sync", m)] = sync_run.seconds
            times[(workload, "async", m)] = async_run.seconds
            result.add_row(
                machines=m,
                task=f"BPPR({workload})",
                sync=sync_run.time_label(),
                **{
                    "async": async_run.time_label(),
                    "sync bytes": format_bytes(_bytes_per_machine(sync_run)),
                    "async bytes": format_bytes(
                        _bytes_per_machine(async_run)
                    ),
                },
            )

    top = max(machines)
    result.claim(
        "PageRank: async beats sync on multi-machine clusters",
        times[("pr", "async", top)] < times[("pr", "sync", top)],
    )
    heavy = max(workloads)
    result.claim(
        f"BPPR({heavy}): async is slower than sync at {top} machines",
        times[(heavy, "async", top)] > times[(heavy, "sync", top)],
    )
    if not config.quick:
        small, large = machines[1], machines[-1]
        gap_small = times[(heavy, "async", small)] / times[(heavy, "sync", small)]
        gap_large = times[(heavy, "async", large)] / times[(heavy, "sync", large)]
        result.claim(
            "the async penalty on heavy BPPR grows with the machine count",
            gap_large > gap_small,
        )
    return result
