"""Figure 10 — the whole-graph access mode (Section 4.9).

Every machine holds the entire graph; the workload (not the graph) is
partitioned, computation is communication-free, and a final aggregation
step merges the per-machine partial results (the stacked upper bar).
Paper findings checked: the mode overloads more easily at low batch
counts (whole graph resident per machine) but, once the workload is
properly divided, it can beat the default partitioned setting.
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy27
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    label_times,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig10"
TITLE = "Whole-graph access mode vs default partitioning (Fig 5c settings)"

SETTINGS = ((8, 10240), (16, 20480), (27, 34560))


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    base_cluster = galaxy27(scale=config.scale)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["setting", "mode"]
        + [f"b={b}" for b in batch_axis(config, 16)]
        + ["optimum", "aggregation"],
        paper_summary=(
            "whole-graph mode more easily overloads if the workload is not "
            "properly divided, but with a proper batch setting it can even "
            "beat the default"
        ),
    )

    settings = SETTINGS if not config.quick else SETTINGS[-1:]
    wins = []
    for machines, workload in settings:
        cluster = base_cluster.with_machines(machines)
        axis = batch_axis(config, workload)
        whole_runs = sweep_batches(
            "pregel+(wholegraph)",
            cluster,
            lambda w=workload: task_for(graph, "bppr", w, config.quick),
            axis,
            config.seed,
            jobs=config.jobs,
        )
        default_runs = sweep_batches(
            "pregel+",
            cluster,
            lambda w=workload: task_for(graph, "bppr", w, config.quick),
            axis,
            config.seed,
            jobs=config.jobs,
        )
        for mode, runs in (("whole-graph", whole_runs), ("default", default_runs)):
            row = {
                "setting": f"({workload:g},{machines})",
                "mode": mode,
            }
            row.update(label_times(runs))
            row["optimum"] = optimum_batches(runs) or "overload"
            agg = runs[0].aggregation_seconds
            row["aggregation"] = f"{agg:.1f}s" if agg else "-"
            result.add_row(**row)

        best_whole = min(
            (m for m in whole_runs if not m.overloaded),
            key=lambda m: m.seconds,
            default=None,
        )
        best_default = min(
            (m for m in default_runs if not m.overloaded),
            key=lambda m: m.seconds,
            default=None,
        )
        if best_whole and best_default:
            wins.append(best_whole.seconds < best_default.seconds)

    result.claim(
        "a well-batched whole-graph mode beats the default in some setting",
        any(wins),
    )
    return result
