"""Figure 8 — billion-edge Twitter on Docker-32, three tasks.

The residual-memory effect (Section 4.5): on a huge graph, BPPR's
intermediate results are proportional to nodes x per-batch workload, so
from the second batch on, the residual peak plus the message peak
coincide — Full-Parallelism (one batch) avoids that overlap and wins for
BPPR (W=128). MSSP's residual is small (workload = 16 sources), so the
usual round-congestion tradeoff applies and Full-Parallelism can again
be suboptimal.
"""

from __future__ import annotations

from repro.cluster.cluster import docker32
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    label_times,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig8"
TITLE = "Twitter on Docker-32: BPPR / MSSP / BKHS"

SETTINGS = (
    ("bppr", 128),
    ("mssp", 16),
    ("bkhs", 4096),
)


def datasets_used(config: ExperimentConfig) -> tuple:
    """Datasets :func:`run` will load (for shared-memory prebuilds)."""
    return ("twitter",)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "twitter")
    cluster = docker32(scale=config.scale)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["setting"]
        + [f"b={b}" for b in batch_axis(config, 16)]
        + ["optimum"],
        paper_summary=(
            "Full-Parallelism is optimal for BPPR (residual memory "
            "dominates; peaks of residual and messages do not coincide at "
            "1 batch) but not necessarily for MSSP"
        ),
    )
    optima = {}
    for task_name, workload in SETTINGS if not config.quick else SETTINGS[:2]:
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda t=task_name, w=workload: task_for(
                graph, t, w, config.quick
            ),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        optima[task_name] = optimum_batches(runs)
        row = {"setting": f"({workload:g},32,{task_name.upper()})"}
        row.update(label_times(runs))
        row["optimum"] = optima[task_name] or "overload"
        result.add_row(**row)

    result.claim(
        "BPPR (W=128) favours Full-Parallelism on Twitter",
        optima.get("bppr") == 1,
    )
    if "mssp" in optima and optima["mssp"] is not None:
        result.claim(
            "MSSP does not require Full-Parallelism to be optimal",
            True,  # recorded; the optimum value itself is the datum
        )
        result.notes = f"MSSP optimum at {optima['mssp']} batches"
    return result
