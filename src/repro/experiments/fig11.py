"""Figure 11 — the correlation diagram, measured.

Figure 11 summarises the causal structure the paper distils from its
experiments: workload drives message congestion; congestion drives
memory use (non-out-of-core) or disk utilisation (out-of-core); more
machines relieve per-machine congestion; capacity pushes the bound
states away. The paper draws it as arrows; this experiment *measures*
each arrow on controlled sweeps and checks the sign:

* workload ↑  → messages per round ↑        (both system families)
* workload ↑  → per-machine memory used ↑   (Pregel+)
* workload ↑  → disk utilisation ↑          (GraphD)
* machines ↑  → per-machine memory used ↓   (Pregel+)
* batches ↑   → per-round congestion ↓ and memory ↓
* memory size ↑ → memory-bound state pushed to higher workloads
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for
from repro.sim.overload import MemoryState, classify_memory
from repro.units import GB

EXPERIMENT_ID = "fig11"
TITLE = "Correlations of the factors in a synchronous VC-system (measured)"


def _monotone_increasing(values: List[float]) -> bool:
    return all(a < b for a, b in zip(values, values[1:]))


def _monotone_decreasing(values: List[float]) -> bool:
    return all(a > b for a, b in zip(values, values[1:]))


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["arrow", "sweep", "measured"],
        paper_summary=(
            "the black (positive) and red (negative) arrows of Figure 11, "
            "checked by controlled sweeps"
        ),
    )

    workloads = (512, 1024, 2048) if config.quick else (512, 1024, 2048, 4096)

    # workload -> congestion, memory (Pregel+)
    job = MultiProcessingJob("pregel+", cluster)
    congestion, memory = [], []
    for w in workloads:
        m = job.run(task_for(graph, "bppr", w, config.quick), num_batches=2,
                    seed=config.seed)
        congestion.append(m.messages_per_round)
        memory.append(m.peak_memory_bytes)
    result.add_row(
        arrow="workload -> message congestion (+)",
        sweep=f"W={workloads}",
        measured=" -> ".join(f"{c:,.0f}" for c in congestion),
    )
    result.claim(
        "workload increases message congestion",
        _monotone_increasing(congestion),
    )
    result.add_row(
        arrow="congestion -> memory used (+)",
        sweep=f"W={workloads}",
        measured=" -> ".join(f"{b / 2**20:.1f}MB" for b in memory),
    )
    result.claim(
        "congestion increases per-machine memory", _monotone_increasing(memory)
    )

    # workload -> disk utilisation (GraphD)
    graphd = MultiProcessingJob("graphd", cluster)
    utils = []
    for w in workloads:
        m = graphd.run(task_for(graph, "bppr", w, config.quick),
                       num_batches=2, seed=config.seed)
        utils.append(m.max_disk_utilization)
    result.add_row(
        arrow="congestion -> disk utilisation (+, out-of-core)",
        sweep=f"W={workloads}",
        measured=" -> ".join(f"{u * 100:.0f}%" for u in utils),
    )
    result.claim(
        "congestion increases disk utilisation (GraphD)",
        _monotone_increasing(utils),
    )

    # machines -> per-machine memory (relief)
    machine_counts = (2, 4, 8) if not config.quick else (2, 8)
    per_machine = []
    for machines in machine_counts:
        m = MultiProcessingJob(
            "pregel+", cluster.with_machines(machines)
        ).run(task_for(graph, "bppr", 1024, config.quick), num_batches=2,
              seed=config.seed)
        per_machine.append(m.peak_memory_bytes)
    result.add_row(
        arrow="#machines -> per-machine memory (-)",
        sweep=f"machines={machine_counts}, W=1024",
        measured=" -> ".join(f"{b / 2**20:.1f}MB" for b in per_machine),
    )
    result.claim(
        "more machines relieve per-machine memory",
        _monotone_decreasing(per_machine),
    )

    # batches -> congestion and memory (relief)
    batch_counts = (1, 4, 16)
    cong_by_batch, mem_by_batch = [], []
    for batches in batch_counts:
        m = job.run(task_for(graph, "bppr", 4096, config.quick),
                    num_batches=batches, seed=config.seed)
        cong_by_batch.append(m.messages_per_round)
        mem_by_batch.append(m.peak_memory_bytes)
    result.add_row(
        arrow="#batches -> congestion (-)",
        sweep=f"batches={batch_counts}, W=4096",
        measured=" -> ".join(f"{c:,.0f}" for c in cong_by_batch),
    )
    result.claim(
        "more batches reduce per-round congestion",
        _monotone_decreasing(cong_by_batch),
    )
    result.claim(
        "more batches reduce peak memory", _monotone_decreasing(mem_by_batch)
    )

    # memory size -> memory-bound state pushed away
    big_machine = dataclasses.replace(
        cluster.machine, memory_bytes=64 * GB, os_reserve_bytes=2 * GB
    )
    big_cluster = dataclasses.replace(cluster, machine=big_machine)
    probe_w = 12288
    small = MultiProcessingJob("pregel+", cluster).run(
        task_for(graph, "bppr", probe_w, config.quick), num_batches=1,
        seed=config.seed,
    )
    big = MultiProcessingJob("pregel+", big_cluster).run(
        task_for(graph, "bppr", probe_w, config.quick), num_batches=1,
        seed=config.seed,
    )
    small_state = classify_memory(
        small.peak_memory_bytes, cluster.scaled_machine
    )
    big_state = classify_memory(
        big.peak_memory_bytes, big_cluster.scaled_machine
    )
    result.add_row(
        arrow="memory size -> memory-bound state (-)",
        sweep=f"16GB vs 64GB machines, W={probe_w}",
        measured=f"{small_state.value} -> {big_state.value}",
    )
    result.claim(
        "bigger memory keeps the same workload out of the memory-bound "
        "state",
        small_state is not MemoryState.OK and big_state is MemoryState.OK,
    )
    return result
