"""Table 3 — batches vs disk utilisation vs network (GraphD, Galaxy-27).

GraphD on DBLP with workload 2048 across batch counts 1..128. Paper
findings checked:

* small batch counts saturate the disk (>100 % utilisation, long I/O
  queues, non-zero I/O overuse time);
* utilisation drops to a stable background (~27 %) once per-batch spill
  fits the disk, and stays flat as batches grow further;
* the total-time optimum sits right where utilisation first drops below
  100 % (4 batches in the paper);
* past the optimum, round-synchronisation overheads dominate and total
  time grows again;
* network overuse decreases monotonically with batches but does not
  explain the optimum (the disk does).
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy27
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, sweep_batches, task_for
from repro.units import format_seconds

EXPERIMENT_ID = "table3"
TITLE = "#Batches vs disk utilisation vs network (GraphD, Galaxy-27, W=2048)"

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)
WORKLOAD = 2048


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy27(scale=config.scale)
    batches = BATCHES if not config.quick else (1, 4, 32)

    runs = sweep_batches(
        "graphd",
        cluster,
        lambda: task_for(graph, "bppr", WORKLOAD, config.quick),
        batches,
        config.seed,
        jobs=config.jobs,
    )

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "batches",
            "net overuse",
            "io overuse",
            "max disk util",
            "io queue",
            "total time",
        ],
        paper_summary=(
            "totals 285/236/201/220/260/337/429/632 s for b=1..128; "
            "util >100 % at b=1,2 then ~27 % flat; queue 20256 -> ~20"
        ),
    )
    by_batch = {}
    for metrics in runs:
        by_batch[metrics.num_batches] = metrics
        util = metrics.max_disk_utilization
        result.add_row(
            batches=metrics.num_batches,
            **{
                "net overuse": format_seconds(
                    metrics.network_overuse_seconds
                ),
                "io overuse": format_seconds(metrics.io_overuse_seconds),
                "max disk util": (
                    f">{min(util, 9.99) * 100:.0f}%"
                    if util >= 1.0
                    else f"{util * 100:.0f}%"
                ),
                "io queue": f"{metrics.mean_io_queue_length:.0f}",
                "total time": metrics.time_label(),
            },
        )

    if not config.quick:
        result.claim(
            "1-batch saturates the disk (>100% utilisation)",
            by_batch[1].max_disk_utilization >= 1.0,
        )
        result.claim(
            "utilisation falls below 100% by 4 batches and stays low",
            by_batch[4].max_disk_utilization < 1.0
            and by_batch[128].max_disk_utilization < 1.0,
        )
        optimum = min(runs, key=lambda m: m.seconds).num_batches
        result.claim(
            "the time optimum sits at the utilisation drop (2-8 batches)",
            optimum in (2, 4, 8),
        )
        result.claim(
            "time grows again past the optimum (sync overheads)",
            by_batch[128].seconds > by_batch[8].seconds,
        )
        result.claim(
            "I/O queue collapses once the disk is unsaturated",
            by_batch[1].mean_io_queue_length
            > 20 * by_batch[4].mean_io_queue_length,
        )
        result.claim(
            "network overuse decreases with batches",
            by_batch[1].network_overuse_seconds
            > by_batch[128].network_overuse_seconds,
        )
    return result
