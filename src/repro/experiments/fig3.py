"""Figure 3 — batch sweeps on Galaxy-8: vary task, dataset, machines,
system (panels a-d).

Each panel sweeps the doubling batch axis for the legend's
(workload, machines, X) settings; the summary sub-figure's claim is that
most curves are *not* monotone in the batch count (only (512, 8, Orkut)
is monotone in the paper).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    label_times,
    non_monotone,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig3"
TITLE = "Batch sweeps on Galaxy-8 (vary task / dataset / machines / system)"

#: Panel (a): default DBLP + Pregel+, vary the task.
PANEL_A: List[Tuple[str, float]] = [
    ("bppr", 12288),
    ("mssp", 4096),
    ("bkhs", 65536),
]

#: Panel (b): default BPPR + Pregel+, vary the dataset.
PANEL_B: List[Tuple[str, float]] = [
    ("dblp", 10240),
    ("web-st", 20480),
    ("orkut", 512),
]

#: Panel (c): default DBLP + BPPR + Pregel+, vary machines.
PANEL_C: List[Tuple[int, float]] = [(2, 2048), (4, 5120), (8, 10240)]

#: Panel (d): default DBLP + BPPR, vary the system.
PANEL_D: List[Tuple[str, float]] = [
    ("pregel+", 10240),
    ("giraph(async)", 1024),
    ("pregel+(mirror)", 160),
    ("graphd", 2048),
    ("graphlab", 20480),
    ("giraph", 2048),
]


def datasets_used(config: ExperimentConfig) -> tuple:
    """Datasets :func:`run` will load (for shared-memory prebuilds)."""
    panel_b = PANEL_B if not config.quick else PANEL_B[:2]
    return ("dblp",) + tuple(ds for ds, _ in panel_b)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    cluster = galaxy8(scale=config.scale)
    dblp = dataset(config, "dblp")
    axis_cols = [f"b={b}" for b in batch_axis(config, 160)]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["panel", "setting"] + axis_cols + ["optimum"],
        paper_summary=(
            "Running times are mostly not increasing with the number of "
            "batches; only (512, 8, Orkut) is monotone"
        ),
    )

    non_monotone_count = 0
    total = 0
    monotone_orkut = False

    def record(panel: str, setting: str, runs) -> None:
        nonlocal non_monotone_count, total, monotone_orkut
        row = {"panel": panel, "setting": setting}
        row.update(label_times(runs))
        row["optimum"] = optimum_batches(runs) or "overload"
        result.add_row(**row)
        total += 1
        if non_monotone(runs):
            non_monotone_count += 1
        elif "orkut" in setting:
            monotone_orkut = True

    for task_name, workload in PANEL_A if not config.quick else PANEL_A[:2]:
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda t=task_name, w=workload: task_for(dblp, t, w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("a:task", f"({workload:g},8,{task_name.upper()})", runs)

    for ds_name, workload in PANEL_B if not config.quick else PANEL_B[:2]:
        graph = dataset(config, ds_name)
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda g=graph, w=workload: task_for(g, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("b:dataset", f"({workload:g},8,{ds_name})", runs)

    for machines, workload in PANEL_C if not config.quick else PANEL_C[-1:]:
        runs = sweep_batches(
            "pregel+",
            cluster.with_machines(machines),
            lambda w=workload: task_for(dblp, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("c:machines", f"({workload:g},{machines},Pregel+)", runs)

    for engine, workload in PANEL_D if not config.quick else PANEL_D[:2]:
        runs = sweep_batches(
            engine,
            cluster,
            lambda w=workload: task_for(dblp, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("d:system", f"({workload:g},8,{engine})", runs)

    result.claim(
        "most settings are not monotone in the batch count",
        non_monotone_count >= total / 2,
    )
    result.notes = (
        f"{non_monotone_count}/{total} settings non-monotone"
        + ("; Orkut monotone as in the paper" if monotone_orkut else "")
    )
    return result
