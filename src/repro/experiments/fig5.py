"""Figure 5 — the Galaxy-27 versions of the Figure 3 sweeps.

Larger cluster, larger workloads, plus the billion-edge graphs (Twitter,
Friendster). The summary sub-figure's claim: (128, 27, Twitter) and
(16, 27, Friendster) are monotone (Full-Parallelism optimal, residual
memory dominates), the rest are not.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.cluster import galaxy27
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    label_times,
    non_monotone,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig5"
TITLE = "Batch sweeps on Galaxy-27 (vary task / dataset / machines / system)"

PANEL_A: List[Tuple[str, float]] = [
    ("bppr", 34560),
    ("mssp", 3456),
    ("bkhs", 25600),
]
PANEL_B: List[Tuple[str, float]] = [
    ("dblp", 34560),
    ("orkut", 3000),
    ("web-st", 69120),
    ("livejournal", 8192),
    ("friendster", 16),
    ("twitter", 128),
]
PANEL_C: List[Tuple[int, float]] = [(8, 10240), (16, 20480), (27, 34560)]
PANEL_D: List[Tuple[str, float]] = [
    ("pregel+", 34560),
    ("giraph(async)", 6400),
    ("pregel+(mirror)", 256),
    ("giraph", 6400),
    ("graphd", 5120),
    ("graphlab", 1600),
]


def datasets_used(config: ExperimentConfig) -> tuple:
    """Datasets :func:`run` will load (for shared-memory prebuilds)."""
    panel_b = PANEL_B if not config.quick else PANEL_B[:2]
    return ("dblp",) + tuple(ds for ds, _ in panel_b)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    cluster = galaxy27(scale=config.scale)
    dblp = dataset(config, "dblp")
    axis_cols = [f"b={b}" for b in batch_axis(config, 16)]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["panel", "setting"] + axis_cols + ["optimum"],
        paper_summary=(
            "most settings non-monotone; Twitter (128) and Friendster (16) "
            "monotone because residual memory favours Full-Parallelism"
        ),
    )

    non_monotone_count = 0
    total = 0
    big_graph_monotone = {}

    def record(panel: str, setting: str, runs, big_graph: str = "") -> None:
        nonlocal non_monotone_count, total
        row = {"panel": panel, "setting": setting}
        row.update(label_times(runs))
        row["optimum"] = optimum_batches(runs) or "overload"
        result.add_row(**row)
        total += 1
        is_nm = non_monotone(runs)
        if is_nm:
            non_monotone_count += 1
        if big_graph:
            big_graph_monotone[big_graph] = not is_nm

    panel_a = PANEL_A if not config.quick else PANEL_A[:1]
    for task_name, workload in panel_a:
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda t=task_name, w=workload: task_for(dblp, t, w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("a:task", f"({workload:g},27,{task_name.upper()})", runs)

    panel_b = PANEL_B if not config.quick else PANEL_B[:2]
    for ds_name, workload in panel_b:
        graph = dataset(config, ds_name)
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda g=graph, w=workload: task_for(g, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        big = ds_name if ds_name in ("twitter", "friendster") else ""
        record("b:dataset", f"({workload:g},27,{ds_name})", runs, big)

    panel_c = PANEL_C if not config.quick else PANEL_C[-1:]
    for machines, workload in panel_c:
        runs = sweep_batches(
            "pregel+",
            cluster.with_machines(machines),
            lambda w=workload: task_for(dblp, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("c:machines", f"({workload:g},{machines},Pregel+)", runs)

    panel_d = PANEL_D if not config.quick else PANEL_D[:2]
    for engine, workload in panel_d:
        runs = sweep_batches(
            engine,
            cluster,
            lambda w=workload: task_for(dblp, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        record("d:system", f"({workload:g},27,{engine})", runs)

    result.claim(
        "most settings are not monotone in the batch count",
        non_monotone_count >= total / 2,
    )
    if "twitter" in big_graph_monotone:
        result.claim(
            "Twitter (128 walks) is monotone: Full-Parallelism optimal",
            big_graph_monotone["twitter"],
        )
    result.notes = f"{non_monotone_count}/{total} settings non-monotone"
    return result
