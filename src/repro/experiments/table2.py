"""Table 2 — (workload, batches) vs memory / time / network overuse.

BPPR on DBLP with 4 and 8 machines, workloads {1024, 4096, 12288} and
batch counts {1, 2, 4}. Paper findings checked here:

* more batches -> lower per-machine memory;
* more machines -> lower per-machine memory;
* heavy workloads overflow small clusters at low batch counts
  (12288 on 4 machines overflows at every batch count shown; on 8
  machines only multi-batch settings finish);
* the optimum sits where memory approaches (but stays under) the usable
  capacity, and network-overuse variation is secondary.
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, sweep_batches, task_for
from repro.units import format_bytes, format_seconds

EXPERIMENT_ID = "table2"
TITLE = "(workload, #batches) vs per-machine memory/time/network overuse"

WORKLOADS = (1024, 4096, 12288)
BATCHES = (1, 2, 4)
MACHINE_COUNTS = (4, 8)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    machine_counts = MACHINE_COUNTS if not config.quick else (8,)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "workload",
            "batches",
            "machines",
            "memory",
            "memory(real-equiv)",
            "time",
            "net overuse",
        ],
        paper_summary=(
            "e.g. (1024, 8m): 2.1GB/3.4min; (4096, 4m): 15.0GB/30min at "
            "1 batch falling to 9.6GB at 4 batches; (12288, 4m): Overflow "
            "everywhere, (12288, 8m): overload only at 1 batch"
        ),
    )

    memory = {}
    for machines in machine_counts:
        cluster = galaxy8(scale=config.scale).with_machines(machines)
        for workload in WORKLOADS:
            runs = sweep_batches(
                "pregel+",
                cluster,
                lambda w=workload: task_for(graph, "bppr", w, config.quick),
                BATCHES,
                config.seed,
                jobs=config.jobs,
            )
            for metrics in runs:
                key = (workload, metrics.num_batches, machines)
                memory[key] = metrics.peak_memory_bytes
                result.add_row(
                    workload=workload,
                    batches=metrics.num_batches,
                    machines=machines,
                    memory=format_bytes(metrics.peak_memory_bytes),
                    **{
                        "memory(real-equiv)": format_bytes(
                            metrics.peak_memory_bytes * config.scale
                        )
                    },
                    time=metrics.time_label(),
                    **{
                        "net overuse": format_seconds(
                            metrics.network_overuse_seconds
                        )
                    },
                )

    if not config.quick:
        result.claim(
            "more batches reduce per-machine memory (4096, 4 machines)",
            memory[(4096, 1, 4)]
            > memory[(4096, 2, 4)]
            > memory[(4096, 4, 4)],
        )
        result.claim(
            "more machines reduce per-machine memory (4096, 1 batch)",
            memory[(4096, 1, 8)] < memory[(4096, 1, 4)],
        )
        result.claim(
            "memory grows ~linearly with workload (1024 -> 12288, 8m, 1b)",
            8.0
            <= memory[(12288, 1, 8)] / memory[(1024, 1, 8)]
            <= 16.0,
        )
    return result
