"""Figure 2 — Full-Parallelism may be suboptimal (DBLP, Galaxy-8).

Three systems at their figure workloads: Pregel+ (W=10240), GraphD
(W=6144) and Pregel+(mirror) (W=160), each swept over the doubling batch
axis. The paper's claim: "a system using Full-Parallelism typically runs
significantly slower than those based on other settings".
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    full_parallelism_suboptimal,
    label_times,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig2"
TITLE = "Full-Parallelism may be sub-optimal (DBLP, Galaxy-8)"

#: (engine, BPPR workload) triples straight from the figure legend.
SETTINGS = (
    ("pregel+", 10240),
    ("graphd", 6144),
    ("pregel+(mirror)", 160),
)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    axis = batch_axis(config, min(w for _, w in SETTINGS))

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["setting"] + [f"b={b}" for b in axis] + ["optimum"],
        paper_summary=(
            "Full-Parallelism runs significantly slower than multi-batch "
            "settings for Pregel+ (10240), GraphD (6144) and "
            "Pregel+(mirror) (160) on DBLP/Galaxy-8"
        ),
    )
    for engine, workload in SETTINGS:
        runs = sweep_batches(
            engine,
            cluster,
            lambda w=workload: task_for(graph, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        row = {"setting": f"(W={workload}, {engine})"}
        row.update(label_times(runs))
        row["optimum"] = optimum_batches(runs) or "overload"
        result.add_row(**row)
        if engine in ("pregel+", "graphd"):
            result.claim(
                f"{engine}: Full-Parallelism suboptimal at W={workload}",
                full_parallelism_suboptimal(runs),
            )
    result.notes = (
        "Pregel+(mirror) with its light W=160 workload stays under every "
        "pressure point at this scale, so its curve is monotone here; the "
        "two heavyweight settings reproduce the figure's headline."
    )
    return result
