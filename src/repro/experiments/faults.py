"""Faults — time-to-completion vs checkpoint interval vs failure rate.

The paper evaluates multi-processing on healthy clusters; real
deployments of the systems it studies (Pregel, Giraph, GraphD) run
with checkpoint-and-restart fault tolerance. This experiment measures
the interplay on the simulated cluster: how much a crash costs without
checkpoints (replay from the batch start), how a checkpoint interval
``k`` bounds the replay to at most ``k`` rounds, and what the
checkpoint writes themselves cost when nothing fails. A final row
exercises the overload-recovery loop of Section 4.5: a workload that
would be stamped "overload" at the 6000 s cutoff completes by aborting
the oversized batch and re-splitting the remainder into smaller
front-loaded batches.
"""

from __future__ import annotations

from repro.batching.executor import MultiProcessingJob
from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for
from repro.faults.plan import mixed_fault_plan
from repro.faults.recovery import OverloadRecovery

EXPERIMENT_ID = "faults"
TITLE = "Fault injection: checkpoint interval vs failure rate (DBLP, Galaxy-8)"

WORKLOAD = 1024
BATCHES = 2
CHECKPOINT_INTERVALS = (0, 2, 4, 8)
CRASH_RATES = (0.0, 0.05, 0.15)
QUICK_INTERVALS = (0, 4)
QUICK_RATES = (0.0, 0.1)

#: The overload-recovery row: a workload whose 1-batch run overloads
#: (Figure 6's congestion blowup) but completes once re-split.
RECOVERY_WORKLOAD = 10240


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its robustness claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    job = MultiProcessingJob("pregel+", cluster)
    intervals = QUICK_INTERVALS if config.quick else CHECKPOINT_INTERVALS
    rates = QUICK_RATES if config.quick else CRASH_RATES

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "mode",
            "ckpt",
            "rate",
            "time",
            "crashes",
            "replayed",
            "replay-s",
            "ckpt-s",
            "retries",
            "overloaded",
        ],
        paper_summary=(
            "Pregel-style checkpointing every k rounds bounds crash "
            "replay to <=k rounds; without checkpoints a crash replays "
            "the whole batch prefix. Overloaded batches recover by "
            "aborting and re-splitting front-loaded (Section 4.5)."
        ),
        notes=(
            "every (rate, ckpt) cell at the same rate shares one seeded "
            "fault plan, so the checkpoint comparison sees identical "
            "fault sequences; 'recovery' row re-splits a workload that "
            "overloads at 1 batch"
        ),
    )

    measured = {}
    for rate in rates:
        # One plan per rate: the checkpoint axis must see the same
        # crash/straggler sequence for the comparison to be fair.
        plan = mixed_fault_plan(config.seed, cluster.num_machines, rate)
        for interval in intervals:
            metrics = job.run(
                task_for(graph, "bppr", WORKLOAD, config.quick),
                num_batches=BATCHES,
                seed=config.seed,
                fault_plan=plan if rate else None,
                checkpoint_every=interval or None,
            )
            measured[(rate, interval)] = metrics
            result.add_row(
                mode="faults",
                ckpt=interval or "-",
                rate=rate,
                time=metrics.time_label(),
                crashes=metrics.crashes,
                replayed=metrics.rounds_replayed,
                **{
                    "replay-s": round(metrics.replay_seconds, 1),
                    "ckpt-s": round(metrics.checkpoint_seconds, 1),
                },
                retries=0,
                overloaded=metrics.overloaded,
            )

    recovered = job.run_with_recovery(
        lambda w: task_for(graph, "bppr", w, config.quick),
        RECOVERY_WORKLOAD,
        num_batches=1,
        seed=config.seed,
        recovery=OverloadRecovery(max_retries=6),
    )
    result.add_row(
        mode="recovery",
        ckpt="-",
        rate="-",
        time=recovered.time_label(),
        crashes=recovered.crashes,
        replayed=recovered.rounds_replayed,
        **{
            "replay-s": round(recovered.replay_seconds, 1),
            "ckpt-s": round(recovered.checkpoint_seconds, 1),
        },
        retries=recovered.overload_retries,
        overloaded=recovered.overloaded,
    )

    # ------------------------------------------------------------------
    # Claims
    # ------------------------------------------------------------------
    faulty_rates = [r for r in rates if r > 0]
    top_rate = max(faulty_rates)
    baseline = measured[(0.0, 0)]
    no_ckpt = measured[(top_rate, 0)]
    ckpt_runs = [
        (k, measured[(top_rate, k)]) for k in intervals if k > 0
    ]

    result.claim(
        "crashes at the highest rate actually hit the run",
        no_ckpt.crashes > 0,
    )
    result.claim(
        "checkpointing every k rounds bounds replay to <=k rounds per "
        "crash",
        all(
            m.rounds_replayed <= m.crashes * k
            for k, m in ckpt_runs
            if m.crashes
        ),
    )
    result.claim(
        "checkpointed runs lose strictly less replay time than the "
        "no-checkpoint run under the same fault sequence",
        all(
            m.replay_seconds < no_ckpt.replay_seconds
            for _k, m in ckpt_runs
        )
        and no_ckpt.replay_seconds > 0,
    )
    zero_ckpt = measured[(0.0, min(k for k in intervals if k > 0))]
    result.claim(
        "at zero failure rate checkpointing adds only its write cost",
        zero_ckpt.crashes == 0
        and zero_ckpt.replay_seconds == 0.0
        and zero_ckpt.checkpoint_seconds > 0.0
        and abs(
            zero_ckpt.seconds
            - (baseline.seconds + zero_ckpt.checkpoint_seconds)
        )
        <= 1e-6 * max(baseline.seconds, 1.0),
    )
    plan_a = mixed_fault_plan(config.seed, cluster.num_machines, top_rate)
    plan_b = mixed_fault_plan(config.seed, cluster.num_machines, top_rate)
    result.claim(
        "the same seed generates an identical fault plan",
        plan_a.fingerprint == plan_b.fingerprint and plan_a == plan_b,
    )
    one_batch = job.run(
        task_for(graph, "bppr", RECOVERY_WORKLOAD, config.quick),
        num_batches=1,
        seed=config.seed,
    )
    result.claim(
        "overload recovery completes a workload the 1-batch run cuts "
        "off, with its retry history recorded",
        one_batch.overloaded
        and not recovered.overloaded
        and recovered.overload_retries > 0
        and len(recovered.retry_history) == recovered.overload_retries,
    )
    return result
