"""Figure 7 — performance and monetary cost in the cloud (Docker-32).

The Figure 3-style sweeps on the Docker-32 cluster, each x-axis group
priced in credits (sum over the group's settings). Overloaded runs are
charged at the cutoff and marked ``>$X`` as lower bounds. Checked
claims: an ill-chosen batch count wastes significant money, and the
per-group optimum cost is well below the worst setting.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.cluster import docker32
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    sweep_batches,
    task_for,
)
from repro.sim.monetary import credit_cost, sweep_cost

EXPERIMENT_ID = "fig7"
TITLE = "Performance and monetary cost in the cloud (Docker-32)"

PANEL_A: List[Tuple[str, float]] = [
    ("bppr", 40960),
    ("mssp", 4096),
    ("bkhs", 8192),
]
PANEL_B: List[Tuple[str, float]] = [
    ("dblp", 40960),
    ("orkut", 4096),
    ("web-st", 81920),
    ("twitter", 128),
]
PANEL_C: List[Tuple[int, float]] = [(8, 10240), (16, 20480), (32, 40960)]
PANEL_D: List[Tuple[str, float]] = [
    ("pregel+", 40960),
    ("graphd", 4096),
    ("giraph", 8192),
    ("pregel+(mirror)", 160),
]


def datasets_used(config: ExperimentConfig) -> tuple:
    """Datasets :func:`run` will load (for shared-memory prebuilds)."""
    panel_b = PANEL_B if not config.quick else PANEL_B[:1]
    return ("dblp",) + tuple(ds for ds, _ in panel_b)


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    cluster = docker32(scale=config.scale)
    dblp = dataset(config, "dblp")
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["panel", "batches", "group cost", "settings (time each)"],
        paper_summary=(
            "ill-set batch counts cost far more than the optimum (e.g. "
            "panel b: >$153 at 1 batch and >$168 at 16 vs $94 optimal); "
            "optimising the batch scheme is a cloud budget optimisation"
        ),
    )

    def sweep_panel(panel_name, settings, run_fn):
        axis = batch_axis(config, min(w for _, w in settings))
        per_batch_cost = {}
        per_setting_best = []
        for batches in axis:
            group_runs = []
            for key, workload in settings:
                metrics = run_fn(key, workload, batches)
                group_runs.append(metrics)
            cost = sweep_cost(group_runs, cluster)
            per_batch_cost[batches] = cost
            result.add_row(
                panel=panel_name,
                batches=batches,
                **{"group cost": cost.label()},
                **{
                    "settings (time each)": "; ".join(
                        f"{m.total_workload:g}:{m.time_label()}"
                        for m in group_runs
                    )
                },
            )
        # Optimal cost if each setting is tuned individually.
        for key, workload in settings:
            runs = [run_fn(key, workload, b) for b in axis]
            costs = [credit_cost(m, cluster) for m in runs]
            per_setting_best.append(min(costs, key=lambda c: c.credits))
        optimal = sum(c.credits for c in per_setting_best)
        return per_batch_cost, optimal

    cache = {}

    def run_task(task_name, workload, batches):
        key = ("task", task_name, workload, batches)
        if key not in cache:
            cache[key] = sweep_batches(
                "pregel+",
                cluster,
                lambda: task_for(dblp, task_name, workload, config.quick),
                [batches],
                config.seed,
                jobs=config.jobs,
            )[0]
        return cache[key]

    def run_dataset(ds_name, workload, batches):
        key = ("ds", ds_name, workload, batches)
        if key not in cache:
            graph = dataset(config, ds_name)
            cache[key] = sweep_batches(
                "pregel+",
                cluster,
                lambda: task_for(graph, "bppr", workload, config.quick),
                [batches],
                config.seed,
                jobs=config.jobs,
            )[0]
        return cache[key]

    def run_machines(machines, workload, batches):
        key = ("m", machines, workload, batches)
        if key not in cache:
            cache[key] = sweep_batches(
                "pregel+",
                cluster.with_machines(machines),
                lambda: task_for(dblp, "bppr", workload, config.quick),
                [batches],
                config.seed,
                jobs=config.jobs,
            )[0]
        return cache[key]

    def run_engine(engine, workload, batches):
        key = ("e", engine, workload, batches)
        if key not in cache:
            cache[key] = sweep_batches(
                engine,
                cluster,
                lambda: task_for(dblp, "bppr", workload, config.quick),
                [batches],
                config.seed,
                jobs=config.jobs,
            )[0]
        return cache[key]

    panels = [
        ("a:task", PANEL_A if not config.quick else PANEL_A[:1], run_task),
        ("b:dataset", PANEL_B if not config.quick else PANEL_B[:1], run_dataset),
        ("c:machines", PANEL_C if not config.quick else PANEL_C[-1:], run_machines),
        ("d:system", PANEL_D if not config.quick else PANEL_D[:2], run_engine),
    ]
    for panel_name, settings, run_fn in panels:
        per_batch, optimal = sweep_panel(panel_name, settings, run_fn)
        worst = max(per_batch.values(), key=lambda c: c.credits)
        best_group = min(per_batch.values(), key=lambda c: c.credits)
        result.claim(
            f"{panel_name}: tuning batches saves money "
            f"(worst {worst.label()} vs best group {best_group.label()} "
            f"vs per-setting optimum ${optimal:.0f})",
            worst.credits > 1.15 * best_group.credits
            and optimal <= best_group.credits + 1e-9,
        )
    return result
