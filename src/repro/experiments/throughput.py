"""Online scheduling under arrival load (``repro.sched``).

Not a paper figure: the paper batches one workload offline. This
experiment drives the admission-controlled scheduler with seeded
Poisson arrival streams of mixed BPPR/MSSP queries at increasing rates
and reports per-task latency percentiles (queueing + execution) and
sustained throughput — the online regime the ROADMAP's north star
(serving heavy traffic) needs. The admission invariant (projected
``Σ Mr + M*`` never above the ``p·M`` budget) is checked on every
executed batch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset
from repro.perf.parallel import parallel_map_fork
from repro.sched.arrivals import TaskRequest, generate_arrivals
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService

#: Arrival rates swept (mean requests per simulated second).
RATES: Tuple[float, ...] = (0.25, 0.5, 1.0)
QUICK_RATES: Tuple[float, ...] = (0.5,)

#: Stream length in arrival ticks.
DURATION = 120
QUICK_DURATION = 40

#: Task kinds mixed on the stream.
KINDS: Tuple[str, ...] = ("bppr", "mssp")

#: Fixed setting of the FIFO-versus-preemptive A/B scenario
#: (``--preempt``). Pinned rather than inherited from the config: it
#: is a controlled microbenchmark — small urgent BPPR queries arriving
#: behind one large low-priority BKHS job — not a scale sweep.
PREEMPT_SCALE = 4000
PREEMPT_SEED = 11


def datasets_used(config: ExperimentConfig) -> Tuple[str, ...]:
    """Datasets this experiment loads (for shared-memory prebuild)."""
    return ("dblp",)


def _preempt_requests() -> List[TaskRequest]:
    """One large background BKHS job, then a lane of small urgent BPPR
    queries with 30 s deadlines arriving one per second behind it."""
    requests = [TaskRequest(0, "bkhs", 96.0, 0.0, priority=2)]
    requests += [
        TaskRequest(i, "bppr", 8.0, float(i), priority=0,
                    deadline_seconds=30.0)
        for i in range(1, 13)
    ]
    return requests


def _preempt_comparison() -> List[Dict[str, Any]]:
    """Run the pinned A/B scenario under FIFO and preemptive policies.

    Returns one row per policy. A warmup run primes the process-wide
    model/artifact caches first and is discarded — the first service
    constructed in a process trains its memory models cold, which
    perturbs downstream RNG streams, and the A/B comparison must see
    identical conditions on both arms.
    """
    from repro.graph.datasets import load_dataset
    from repro.sim.metrics import percentile

    graph = load_dataset("dblp", scale=PREEMPT_SCALE)
    cluster = cluster_by_name("galaxy-8", scale=PREEMPT_SCALE)

    def run_policy(policy: ServicePolicy):
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=("bppr", "bkhs"),
            seed=PREEMPT_SEED,
            task_params={"bkhs": {"sample_limit": 16}},
            policy=policy,
        )
        return service.run(_preempt_requests())

    fifo_policy = ServicePolicy()
    preempt_policy = ServicePolicy(
        priority_classes=3,
        preempt=True,
        preempt_rule="eager",
        aging_seconds=None,
    )
    run_policy(fifo_policy)  # warmup; discarded
    rows = []
    for mode, policy in (("fifo", fifo_policy), ("preempt", preempt_policy)):
        metrics = run_policy(policy)
        urgent = [
            t.latency_seconds for t in metrics.latencies if t.kind == "bppr"
        ]
        rows.append(
            {
                "mode": mode,
                "urgent_p99_s": percentile(urgent, 99),
                "deadline_misses": metrics.deadline_misses,
                "preemptions": metrics.preemptions,
                "resumes": metrics.resumes,
                "preempt_s": metrics.preempt_seconds,
                "resilience": metrics.resilience_summary(),
            }
        )
    return rows


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep arrival rates through the scheduling service."""
    graph = dataset(config, "dblp")
    cluster = cluster_by_name("galaxy-8", scale=config.scale)
    rates = QUICK_RATES if config.quick else RATES
    duration = QUICK_DURATION if config.quick else DURATION
    sample_limit = 16 if config.quick else 48

    def run_rate(index: int) -> Dict[str, Any]:
        rate = rates[index]
        engine = create_engine("pregel+", cluster)
        service = SchedulerService(
            engine,
            graph,
            kinds=KINDS,
            seed=config.seed,
            task_params={
                "mssp": {"sample_limit": sample_limit},
                "bkhs": {"sample_limit": sample_limit},
            },
        )
        requests = generate_arrivals(
            rate, duration, seed=config.seed, kinds=KINDS
        )
        metrics = service.run(
            requests, arrival_rate=rate, duration_rounds=duration
        )
        pct = metrics.latency_percentiles()
        over_budget = sum(
            1
            for b in metrics.batch_log
            if not b["aborted"]
            and b["projected_bytes"] > b["budget_bytes"] * (1 + 1e-9)
        )
        return {
            "rate": rate,
            "tasks": metrics.completed_tasks,
            "units": metrics.completed_units,
            "batches": len(metrics.batch_log),
            "p50_s": pct["p50_seconds"],
            "p95_s": pct["p95_seconds"],
            "p99_s": pct["p99_seconds"],
            "units_per_s": metrics.throughput_units_per_second,
            "flushes": metrics.flushes,
            "over_budget": over_budget,
        }

    rows = parallel_map_fork(run_rate, len(rates), jobs=config.jobs)

    result = ExperimentResult(
        experiment_id="throughput",
        title="Online scheduling: latency/throughput under arrival load",
        columns=[
            "rate",
            "tasks",
            "units",
            "batches",
            "p50_s",
            "p95_s",
            "p99_s",
            "units_per_s",
            "flushes",
        ],
        paper_summary=(
            "Extension beyond the paper: the Section-5 memory models "
            "drive online admission control over a seeded Poisson "
            "arrival stream of mixed queries."
        ),
    )
    for row in rows:
        result.add_row(**{k: v for k, v in row.items() if k != "over_budget"})

    result.claim(
        "admission keeps every batch's projected memory within the p-budget",
        all(row["over_budget"] == 0 for row in rows),
    )
    result.claim(
        "every arriving request completes (the queue drains)",
        all(row["tasks"] > 0 for row in rows),
    )
    if len(rows) > 1:
        result.claim(
            "queueing latency grows with the arrival rate",
            rows[-1]["p95_s"] >= rows[0]["p95_s"],
        )
    result.notes = (
        f"pregel+ on dblp@galaxy-8, kinds={'/'.join(KINDS)}, "
        f"duration {duration} ticks; latency = queueing + execution on "
        "the simulated clock."
    )

    if config.preempt:
        comparison = _preempt_comparison()
        by_mode = {row["mode"]: row for row in comparison}
        fifo, pre = by_mode["fifo"], by_mode["preempt"]
        result.extras["preempt_comparison"] = [
            {k: v for k, v in row.items() if k != "resilience"}
            for row in comparison
        ]
        result.extras["resilience"] = {
            "scenario": (
                f"dblp@{PREEMPT_SCALE} galaxy-8 pregel+ seed "
                f"{PREEMPT_SEED}: 1 bkhs (96u, prio 2) + 12 bppr "
                "(8u, prio 0, 30s deadline)"
            ),
            "fifo": dict(fifo["resilience"], urgent_p99_s=fifo["urgent_p99_s"]),
            "preempt": dict(
                pre["resilience"], urgent_p99_s=pre["urgent_p99_s"]
            ),
        }
        result.claim(
            "barrier preemption improves the urgent lane's p99 latency "
            "over FIFO under the same mixed arrival stream",
            pre["urgent_p99_s"] < fifo["urgent_p99_s"],
        )
        result.claim(
            "preemption reduces deadline misses on the urgent lane",
            pre["deadline_misses"] < fifo["deadline_misses"],
        )
        result.notes += (
            " Preempt A/B (pinned scenario): FIFO urgent "
            f"p99={fifo['urgent_p99_s']:.2f}s "
            f"({fifo['deadline_misses']} deadline misses) vs preempt "
            f"p99={pre['urgent_p99_s']:.2f}s "
            f"({pre['deadline_misses']} misses, {pre['preemptions']} "
            f"preemptions, {pre['resumes']} resumes)."
        )
    return result
