"""Online scheduling under arrival load (``repro.sched``).

Not a paper figure: the paper batches one workload offline. This
experiment drives the admission-controlled scheduler with seeded
Poisson arrival streams of mixed BPPR/MSSP queries at increasing rates
and reports per-task latency percentiles (queueing + execution) and
sustained throughput — the online regime the ROADMAP's north star
(serving heavy traffic) needs. The admission invariant (projected
``Σ Mr + M*`` never above the ``p·M`` budget) is checked on every
executed batch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset
from repro.perf.parallel import parallel_map_fork
from repro.sched.arrivals import (
    DEFAULT_PRIORITY,
    TaskRequest,
    generate_arrivals,
)
from repro.sched.policy import ServicePolicy
from repro.sched.service import SchedulerService

#: Arrival rates swept (mean requests per simulated second).
RATES: Tuple[float, ...] = (0.25, 0.5, 1.0)
QUICK_RATES: Tuple[float, ...] = (0.5,)

#: Stream length in arrival ticks.
DURATION = 120
QUICK_DURATION = 40

#: Task kinds mixed on the stream.
KINDS: Tuple[str, ...] = ("bppr", "mssp")

#: Fixed setting of the FIFO-versus-preemptive A/B scenario
#: (``--preempt``). Pinned rather than inherited from the config: it
#: is a controlled microbenchmark — small urgent BPPR queries arriving
#: behind one large low-priority BKHS job — not a scale sweep.
PREEMPT_SCALE = 4000
PREEMPT_SEED = 11

#: Fixed setting of the single-versus-multi-tenant A/B scenario
#: (``--multi-tenant``): two tenants issuing overlapping repeated
#: queries, so the content-keyed result cache can coalesce in-flight
#: duplicates and serve late repeats from memory.
MT_SCALE = 4000
MT_SEED = 13

#: Fixed setting of the static-versus-calibrated A/B scenario
#: (``--calibrate``): a deadline-bearing mixed stream long enough for
#: the ask-tell loop to observe every batch and refit mid-run.
CAL_SCALE = 4000
CAL_SEED = 17
CAL_RATE = 0.8
CAL_DURATION = 30
CAL_DEADLINE = 600.0


def datasets_used(config: ExperimentConfig) -> Tuple[str, ...]:
    """Datasets this experiment loads (for shared-memory prebuild)."""
    return ("dblp",)


def _preempt_requests() -> List[TaskRequest]:
    """One large background BKHS job, then a lane of small urgent BPPR
    queries with 30 s deadlines arriving one per second behind it."""
    requests = [TaskRequest(0, "bkhs", 96.0, 0.0, priority=2)]
    requests += [
        TaskRequest(i, "bppr", 8.0, float(i), priority=0,
                    deadline_seconds=30.0)
        for i in range(1, 13)
    ]
    return requests


def _preempt_comparison() -> List[Dict[str, Any]]:
    """Run the pinned A/B scenario under FIFO and preemptive policies.

    Returns one row per policy. A warmup run primes the process-wide
    model/artifact caches first and is discarded — the first service
    constructed in a process trains its memory models cold, which
    perturbs downstream RNG streams, and the A/B comparison must see
    identical conditions on both arms.
    """
    from repro.graph.datasets import load_dataset
    from repro.sim.metrics import percentile

    graph = load_dataset("dblp", scale=PREEMPT_SCALE)
    cluster = cluster_by_name("galaxy-8", scale=PREEMPT_SCALE)

    def run_policy(policy: ServicePolicy):
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=("bppr", "bkhs"),
            seed=PREEMPT_SEED,
            task_params={"bkhs": {"sample_limit": 16}},
            policy=policy,
        )
        return service.run(_preempt_requests())

    fifo_policy = ServicePolicy()
    preempt_policy = ServicePolicy(
        priority_classes=3,
        preempt=True,
        preempt_rule="eager",
        aging_seconds=None,
    )
    run_policy(fifo_policy)  # warmup; discarded
    rows = []
    for mode, policy in (("fifo", fifo_policy), ("preempt", preempt_policy)):
        metrics = run_policy(policy)
        urgent = [
            t.latency_seconds for t in metrics.latencies if t.kind == "bppr"
        ]
        rows.append(
            {
                "mode": mode,
                "urgent_p99_s": percentile(urgent, 99),
                "deadline_misses": metrics.deadline_misses,
                "preemptions": metrics.preemptions,
                "resumes": metrics.resumes,
                "preempt_s": metrics.preempt_seconds,
                "resilience": metrics.resilience_summary(),
            }
        )
    return rows


def _multitenant_requests() -> List[TaskRequest]:
    """Two tenants repeating one BPPR query (same content key) with
    distinct MSSP work mixed in, plus late repeats of the query long
    after the first execution completed: in-flight duplicates coalesce
    onto the leader, the late repeats are pure cache hits."""
    requests = []
    tid = 0
    for tick in range(6):
        t = float(tick * 4)
        for tenant in ("acme", "globex"):
            requests.append(
                TaskRequest(tid, "bppr", 8.0, t, tenant=tenant)
            )
            tid += 1
    for i in range(4):
        requests.append(
            TaskRequest(tid, "mssp", 4.0 + i, float(2 + 7 * i),
                        tenant="acme")
        )
        tid += 1
    for tenant in ("acme", "globex"):
        requests.append(
            TaskRequest(tid, "bppr", 8.0, 1.0e6, tenant=tenant)
        )
        tid += 1
    return requests


def _multitenant_comparison() -> List[Dict[str, Any]]:
    """Run the pinned two-tenant stream under the legacy single-tenant
    policy and under quotas + Table-4 routing + the result cache.

    Same warmup discipline as :func:`_preempt_comparison`: the first
    run primes the process-wide model/artifact caches and is discarded
    so both arms see identical conditions.
    """
    from repro.graph.datasets import load_dataset
    from repro.sched.policy import TABLE4_ROUTES
    from repro.sim.metrics import percentile

    graph = load_dataset("dblp", scale=MT_SCALE)
    cluster = cluster_by_name("galaxy-8", scale=MT_SCALE)

    def run_policy(policy: ServicePolicy):
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=("bppr", "mssp"),
            seed=MT_SEED,
            task_params={"mssp": {"sample_limit": 16}},
            policy=policy,
        )
        return service, service.run(_multitenant_requests())

    single = ServicePolicy()
    multi = ServicePolicy(
        priority_classes=2,
        aging_seconds=None,
        routes=TABLE4_ROUTES,
        tenant_quotas={"acme": 0.6, "globex": 0.6},
        tenant_priorities={"acme": 0, "globex": 1},
        result_cache=True,
    )
    run_policy(single)  # warmup; discarded
    rows = []
    for mode, policy in (("single", single), ("multi-tenant", multi)):
        service, metrics = run_policy(policy)
        latencies = [t.latency_seconds for t in metrics.latencies]
        cache = metrics.result_cache or {}
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        lookups = hits + misses
        payloads = {
            bytes(service.responses[t.task_id])
            for t in metrics.latencies
            if t.kind == "bppr" and t.task_id in service.responses
        }
        rows.append(
            {
                "mode": mode,
                "tasks": metrics.completed_tasks,
                "batches": len(metrics.batch_log),
                "hits": hits,
                "coalesced": cache.get("coalesced", 0),
                "hit_rate": hits / lookups if lookups else 0.0,
                "p99_s": percentile(latencies, 99),
                "identical_payloads": len(payloads) <= 1,
                "tenants": metrics.tenant_summary(),
            }
        )
    return rows


def _calibration_comparison() -> List[Dict[str, Any]]:
    """Run the pinned deadline-bearing stream under the static startup
    fit and under online ask-tell calibration.

    Same warmup discipline as :func:`_preempt_comparison`: the first
    run primes the process-wide model/artifact caches and is discarded
    so both arms see identical conditions.
    """
    from repro.graph.datasets import load_dataset
    from repro.sim.metrics import percentile

    graph = load_dataset("dblp", scale=CAL_SCALE)
    cluster = cluster_by_name("galaxy-8", scale=CAL_SCALE)

    def run_policy(policy: ServicePolicy):
        service = SchedulerService(
            create_engine("pregel+", cluster),
            graph,
            kinds=("bppr", "mssp"),
            seed=CAL_SEED,
            task_params={"mssp": {"sample_limit": 16}},
            policy=policy,
        )
        requests = generate_arrivals(
            CAL_RATE,
            CAL_DURATION,
            seed=CAL_SEED,
            kinds=("bppr", "mssp"),
            deadlines={DEFAULT_PRIORITY: CAL_DEADLINE},
        )
        return service.run(requests, arrival_rate=CAL_RATE)

    static = ServicePolicy(drop_expired=True)
    calibrated = ServicePolicy(drop_expired=True, calibrate=True)
    run_policy(static)  # warmup; discarded
    rows = []
    for mode, policy in (("static", static), ("calibrated", calibrated)):
        metrics = run_policy(policy)
        latencies = [t.latency_seconds for t in metrics.latencies]
        rows.append(
            {
                "mode": mode,
                "tasks": metrics.completed_tasks,
                "batches": len(metrics.batch_log),
                "p99_s": percentile(latencies, 99),
                "drops": metrics.drops_queue_full
                + metrics.drops_watermark
                + metrics.drops_expired,
                "deadline_misses": metrics.deadline_misses,
                "calibration": metrics.calibration,
            }
        )
    return rows


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep arrival rates through the scheduling service."""
    graph = dataset(config, "dblp")
    cluster = cluster_by_name("galaxy-8", scale=config.scale)
    rates = QUICK_RATES if config.quick else RATES
    duration = QUICK_DURATION if config.quick else DURATION
    sample_limit = 16 if config.quick else 48

    def run_rate(index: int) -> Dict[str, Any]:
        rate = rates[index]
        engine = create_engine("pregel+", cluster)
        service = SchedulerService(
            engine,
            graph,
            kinds=KINDS,
            seed=config.seed,
            task_params={
                "mssp": {"sample_limit": sample_limit},
                "bkhs": {"sample_limit": sample_limit},
            },
        )
        requests = generate_arrivals(
            rate, duration, seed=config.seed, kinds=KINDS
        )
        metrics = service.run(
            requests, arrival_rate=rate, duration_rounds=duration
        )
        pct = metrics.latency_percentiles()
        over_budget = sum(
            1
            for b in metrics.batch_log
            if not b["aborted"]
            and b["projected_bytes"] > b["budget_bytes"] * (1 + 1e-9)
        )
        return {
            "rate": rate,
            "tasks": metrics.completed_tasks,
            "units": metrics.completed_units,
            "batches": len(metrics.batch_log),
            "p50_s": pct["p50_seconds"],
            "p95_s": pct["p95_seconds"],
            "p99_s": pct["p99_seconds"],
            "units_per_s": metrics.throughput_units_per_second,
            "flushes": metrics.flushes,
            "over_budget": over_budget,
        }

    rows = parallel_map_fork(run_rate, len(rates), jobs=config.jobs)

    result = ExperimentResult(
        experiment_id="throughput",
        title="Online scheduling: latency/throughput under arrival load",
        columns=[
            "rate",
            "tasks",
            "units",
            "batches",
            "p50_s",
            "p95_s",
            "p99_s",
            "units_per_s",
            "flushes",
        ],
        paper_summary=(
            "Extension beyond the paper: the Section-5 memory models "
            "drive online admission control over a seeded Poisson "
            "arrival stream of mixed queries."
        ),
    )
    for row in rows:
        result.add_row(**{k: v for k, v in row.items() if k != "over_budget"})

    result.claim(
        "admission keeps every batch's projected memory within the p-budget",
        all(row["over_budget"] == 0 for row in rows),
    )
    result.claim(
        "every arriving request completes (the queue drains)",
        all(row["tasks"] > 0 for row in rows),
    )
    if len(rows) > 1:
        result.claim(
            "queueing latency grows with the arrival rate",
            rows[-1]["p95_s"] >= rows[0]["p95_s"],
        )
    result.notes = (
        f"pregel+ on dblp@galaxy-8, kinds={'/'.join(KINDS)}, "
        f"duration {duration} ticks; latency = queueing + execution on "
        "the simulated clock."
    )

    if config.preempt:
        comparison = _preempt_comparison()
        by_mode = {row["mode"]: row for row in comparison}
        fifo, pre = by_mode["fifo"], by_mode["preempt"]
        result.extras["preempt_comparison"] = [
            {k: v for k, v in row.items() if k != "resilience"}
            for row in comparison
        ]
        result.extras["resilience"] = {
            "scenario": (
                f"dblp@{PREEMPT_SCALE} galaxy-8 pregel+ seed "
                f"{PREEMPT_SEED}: 1 bkhs (96u, prio 2) + 12 bppr "
                "(8u, prio 0, 30s deadline)"
            ),
            "fifo": dict(fifo["resilience"], urgent_p99_s=fifo["urgent_p99_s"]),
            "preempt": dict(
                pre["resilience"], urgent_p99_s=pre["urgent_p99_s"]
            ),
        }
        result.claim(
            "barrier preemption improves the urgent lane's p99 latency "
            "over FIFO under the same mixed arrival stream",
            pre["urgent_p99_s"] < fifo["urgent_p99_s"],
        )
        result.claim(
            "preemption reduces deadline misses on the urgent lane",
            pre["deadline_misses"] < fifo["deadline_misses"],
        )
        result.notes += (
            " Preempt A/B (pinned scenario): FIFO urgent "
            f"p99={fifo['urgent_p99_s']:.2f}s "
            f"({fifo['deadline_misses']} deadline misses) vs preempt "
            f"p99={pre['urgent_p99_s']:.2f}s "
            f"({pre['deadline_misses']} misses, {pre['preemptions']} "
            f"preemptions, {pre['resumes']} resumes)."
        )

    if config.multi_tenant:
        comparison = _multitenant_comparison()
        by_mode = {row["mode"]: row for row in comparison}
        base, mt = by_mode["single"], by_mode["multi-tenant"]
        result.extras["multitenant_comparison"] = [
            {k: v for k, v in row.items() if k != "tenants"}
            for row in comparison
        ]
        result.extras["tenants"] = {
            "scenario": (
                f"dblp@{MT_SCALE} galaxy-8 seed {MT_SEED}: acme+globex "
                "repeating one bppr query (8u) with distinct mssp work; "
                "multi-tenant arm = 0.6/0.6 quotas, Table-4 routing, "
                "result cache on"
            ),
            "single": {
                "tasks": base["tasks"],
                "batches": base["batches"],
                "p99_s": base["p99_s"],
            },
            "multi_tenant": {
                "tasks": mt["tasks"],
                "batches": mt["batches"],
                "p99_s": mt["p99_s"],
                "hit_rate": mt["hit_rate"],
                "coalesced": mt["coalesced"],
                "per_tenant": mt["tenants"],
            },
            "p99_delta_s": mt["p99_s"] - base["p99_s"],
        }
        result.claim(
            "the result cache serves repeat queries from memory "
            "(hit rate > 0)",
            mt["hit_rate"] > 0,
        )
        result.claim(
            "single-flight coalescing joins duplicate in-flight requests",
            mt["coalesced"] > 0,
        )
        result.claim(
            "every cached/coalesced response carries the executed "
            "payload byte-identically",
            mt["identical_payloads"],
        )
        result.claim(
            "multi-tenant serving completes the stream without losing "
            "requests",
            mt["tasks"] == base["tasks"],
        )
        result.notes += (
            " Multi-tenant A/B (pinned scenario): single p99="
            f"{base['p99_s']:.2f}s over {base['batches']} batches vs "
            f"multi-tenant p99={mt['p99_s']:.2f}s over {mt['batches']} "
            f"batches (hit rate {mt['hit_rate']:.2f}, {mt['coalesced']} "
            "coalesced)."
        )

    if config.calibrate:
        comparison = _calibration_comparison()
        by_mode = {row["mode"]: row for row in comparison}
        stat, cal = by_mode["static"], by_mode["calibrated"]
        cal_stats = cal["calibration"] or {}
        result.extras["calibration_comparison"] = [
            {k: v for k, v in row.items() if k != "calibration"}
            for row in comparison
        ]
        result.extras["calibration"] = {
            "scenario": (
                f"dblp@{CAL_SCALE} galaxy-8 pregel+ seed {CAL_SEED}: "
                f"Poisson {CAL_RATE}/s x {CAL_DURATION} ticks of "
                f"bppr+mssp, {CAL_DEADLINE:.0f}s deadlines, expired "
                "requests dropped"
            ),
            "static": {
                "tasks": stat["tasks"],
                "batches": stat["batches"],
                "p99_s": stat["p99_s"],
                "drops": stat["drops"],
                "deadline_misses": stat["deadline_misses"],
            },
            "calibrated": {
                "tasks": cal["tasks"],
                "batches": cal["batches"],
                "p99_s": cal["p99_s"],
                "drops": cal["drops"],
                "deadline_misses": cal["deadline_misses"],
                "stats": cal_stats,
            },
        }
        result.claim(
            "online calibration does not increase dropped requests on "
            "the pinned deadline stream",
            cal["drops"] <= stat["drops"],
        )
        result.claim(
            "online calibration does not increase deadline misses on "
            "the pinned deadline stream",
            cal["deadline_misses"] <= stat["deadline_misses"],
        )
        result.claim(
            "the ask-tell loop observed executed batches (tells > 0)",
            cal_stats.get("tells", 0) > 0,
        )
        result.notes += (
            " Calibration A/B (pinned scenario): static "
            f"drops={stat['drops']} misses={stat['deadline_misses']} "
            f"p99={stat['p99_s']:.2f}s vs calibrated "
            f"drops={cal['drops']} misses={cal['deadline_misses']} "
            f"p99={cal['p99_s']:.2f}s ({cal_stats.get('tells', 0)} "
            f"tells, {cal_stats.get('refits', 0)} refits)."
        )
    return result
