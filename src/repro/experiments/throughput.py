"""Online scheduling under arrival load (``repro.sched``).

Not a paper figure: the paper batches one workload offline. This
experiment drives the admission-controlled scheduler with seeded
Poisson arrival streams of mixed BPPR/MSSP queries at increasing rates
and reports per-task latency percentiles (queueing + execution) and
sustained throughput — the online regime the ROADMAP's north star
(serving heavy traffic) needs. The admission invariant (projected
``Σ Mr + M*`` never above the ``p·M`` budget) is checked on every
executed batch.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.cluster.cluster import cluster_by_name
from repro.engines.registry import create_engine
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset
from repro.perf.parallel import parallel_map_fork
from repro.sched.arrivals import generate_arrivals
from repro.sched.service import SchedulerService

#: Arrival rates swept (mean requests per simulated second).
RATES: Tuple[float, ...] = (0.25, 0.5, 1.0)
QUICK_RATES: Tuple[float, ...] = (0.5,)

#: Stream length in arrival ticks.
DURATION = 120
QUICK_DURATION = 40

#: Task kinds mixed on the stream.
KINDS: Tuple[str, ...] = ("bppr", "mssp")


def datasets_used(config: ExperimentConfig) -> Tuple[str, ...]:
    """Datasets this experiment loads (for shared-memory prebuild)."""
    return ("dblp",)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Sweep arrival rates through the scheduling service."""
    graph = dataset(config, "dblp")
    cluster = cluster_by_name("galaxy-8", scale=config.scale)
    rates = QUICK_RATES if config.quick else RATES
    duration = QUICK_DURATION if config.quick else DURATION
    sample_limit = 16 if config.quick else 48

    def run_rate(index: int) -> Dict[str, Any]:
        rate = rates[index]
        engine = create_engine("pregel+", cluster)
        service = SchedulerService(
            engine,
            graph,
            kinds=KINDS,
            seed=config.seed,
            task_params={
                "mssp": {"sample_limit": sample_limit},
                "bkhs": {"sample_limit": sample_limit},
            },
        )
        requests = generate_arrivals(
            rate, duration, seed=config.seed, kinds=KINDS
        )
        metrics = service.run(
            requests, arrival_rate=rate, duration_rounds=duration
        )
        pct = metrics.latency_percentiles()
        over_budget = sum(
            1
            for b in metrics.batch_log
            if not b["aborted"]
            and b["projected_bytes"] > b["budget_bytes"] * (1 + 1e-9)
        )
        return {
            "rate": rate,
            "tasks": metrics.completed_tasks,
            "units": metrics.completed_units,
            "batches": len(metrics.batch_log),
            "p50_s": pct["p50_seconds"],
            "p95_s": pct["p95_seconds"],
            "p99_s": pct["p99_seconds"],
            "units_per_s": metrics.throughput_units_per_second,
            "flushes": metrics.flushes,
            "over_budget": over_budget,
        }

    rows = parallel_map_fork(run_rate, len(rates), jobs=config.jobs)

    result = ExperimentResult(
        experiment_id="throughput",
        title="Online scheduling: latency/throughput under arrival load",
        columns=[
            "rate",
            "tasks",
            "units",
            "batches",
            "p50_s",
            "p95_s",
            "p99_s",
            "units_per_s",
            "flushes",
        ],
        paper_summary=(
            "Extension beyond the paper: the Section-5 memory models "
            "drive online admission control over a seeded Poisson "
            "arrival stream of mixed queries."
        ),
    )
    for row in rows:
        result.add_row(**{k: v for k, v in row.items() if k != "over_budget"})

    result.claim(
        "admission keeps every batch's projected memory within the p-budget",
        all(row["over_budget"] == 0 for row in rows),
    )
    result.claim(
        "every arriving request completes (the queue drains)",
        all(row["tasks"] > 0 for row in rows),
    )
    if len(rows) > 1:
        result.claim(
            "queueing latency grows with the arrival rate",
            rows[-1]["p95_s"] >= rows[0]["p95_s"],
        )
    result.notes = (
        f"pregel+ on dblp@galaxy-8, kinds={'/'.join(KINDS)}, "
        f"duration {duration} ticks; latency = queueing + execution on "
        "the simulated clock."
    )
    return result
