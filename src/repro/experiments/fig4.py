"""Figure 4 — the optimal batch count grows with the workload.

BPPR on DBLP, Pregel+, Galaxy-8 at workloads 1024 / 10240 / 12288. The
paper's optima on the doubling axis: 1-batch, 2-batch and 4-batch
respectively.
"""

from __future__ import annotations

from repro.cluster.cluster import galaxy8
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import (
    batch_axis,
    dataset,
    label_times,
    optimum_batches,
    sweep_batches,
    task_for,
)

EXPERIMENT_ID = "fig4"
TITLE = "Optimal batching is workload-dependent (DBLP, Galaxy-8)"

WORKLOADS = (1024, 10240, 12288)

#: The paper's optima per workload on the doubling axis.
PAPER_OPTIMA = {1024: 1, 10240: 2, 12288: 4}


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    axis = batch_axis(config, min(WORKLOADS))
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["workload"]
        + [f"b={b}" for b in axis]
        + ["optimum", "paper optimum"],
        paper_summary=(
            "a higher amount of workload tends to require more batches to "
            "reach the optimal performance (1024->1, 10240->2, 12288->4)"
        ),
    )
    optima = {}
    for workload in WORKLOADS:
        runs = sweep_batches(
            "pregel+",
            cluster,
            lambda w=workload: task_for(graph, "bppr", w, config.quick),
            batch_axis(config, workload),
            config.seed,
            jobs=config.jobs,
        )
        best = optimum_batches(runs)
        optima[workload] = best
        row = {"workload": workload}
        row.update(label_times(runs))
        row["optimum"] = best or "overload"
        row["paper optimum"] = PAPER_OPTIMA[workload]
        result.add_row(**row)

    ordered = [optima[w] for w in WORKLOADS if optima[w] is not None]
    result.claim(
        "optimal batch count is non-decreasing in the workload",
        all(a <= b for a, b in zip(ordered, ordered[1:])),
    )
    result.claim(
        "light workload (1024) is best at Full-Parallelism",
        optima.get(1024) == 1,
    )
    result.claim(
        "heavy workload (12288) needs more batches than 10240",
        (optima.get(12288) or 99) >= (optima.get(10240) or 0),
    )
    return result
