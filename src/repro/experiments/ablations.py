"""Ablation study: which modelled mechanism produces which paper effect.

DESIGN.md's simulation model composes four nonlinearities on top of the
linear transfer/compute baseline:

================  =====================================================
congestion knee   superlinear network cost past a cluster-wide
                  per-round volume (Figure 6's >>10x time jump)
thrash/overload   exponential paging penalty past usable memory and the
                  6000 s overload cells (Table 2, Figure 2's 1-batch)
residual memory   intermediate results of earlier batches burden later
                  ones (Figure 9's W1 > W2 optimum, Figure 8's Twitter)
round overheads   barriers + per-round dispatch that grow with the
                  batch count (Table 3's rising tail)
================  =====================================================

Each ablation disables exactly one mechanism and re-runs the experiment
that depends on it, asserting the paper effect *disappears* — evidence
that the reproduction gets the shapes right for the right reasons.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.cluster import ClusterSpec, galaxy8
from repro.engines.base import SimulatedEngine
from repro.engines.registry import engine_profile
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.common import dataset, task_for
from repro.units import GB

EXPERIMENT_ID = "ablations"
TITLE = "Ablations: one mechanism off at a time"


def _engine_without(
    mechanism: str, cluster: ClusterSpec, engine_name: str = "pregel+"
) -> SimulatedEngine:
    """Build an engine with one cost-model mechanism disabled."""
    profile = engine_profile(engine_name)
    if mechanism == "knee":
        network = dataclasses.replace(
            cluster.network, congestion_threshold_bytes=1e6 * GB
        )
        cluster = dataclasses.replace(cluster, network=network)
    elif mechanism == "thrash":
        machine = dataclasses.replace(
            cluster.machine, swap_allowance_fraction=1e9
        )
        cluster = dataclasses.replace(cluster, machine=machine)
        profile = dataclasses.replace(profile)
    elif mechanism == "residual":
        profile = dataclasses.replace(profile, ignore_residual_memory=True)
    elif mechanism == "overheads":
        profile = dataclasses.replace(
            profile,
            barrier_base_seconds=0.0,
            barrier_per_machine_seconds=1e-12,
            per_round_overhead_seconds=0.0,
            per_batch_overhead_seconds=0.0,
        )
    else:
        raise ValueError(f"unknown mechanism {mechanism!r}")
    engine = SimulatedEngine(cluster, profile)
    if mechanism == "thrash":
        # Neutralise the paging penalty entirely.
        original = engine._make_cost_model

        def make_model():
            model = original()
            model.overload_policy = dataclasses.replace(
                model.overload_policy, steepness=0.0
            )
            return model

        engine._make_cost_model = make_model  # type: ignore[method-assign]
    return engine


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Run the experiment and check its paper claims."""
    graph = dataset(config, "dblp")
    cluster = galaxy8(scale=config.scale)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["mechanism", "probe", "with", "without"],
        paper_summary=(
            "internal validity check: disabling each modelled mechanism "
            "makes its paper effect disappear"
        ),
    )

    baseline = SimulatedEngine(cluster, engine_profile("pregel+"))

    # --- congestion knee: Figure 6's superlinear 1-batch jump ----------
    # The heavy workload (8192) stays under the memory wall so the
    # congestion knee is the only nonlinearity in play.
    def one_batch_ratio(engine):
        light = engine.run_job(
            task_for(graph, "bppr", 1024, config.quick), [1024.0],
            seed=config.seed,
        )
        heavy = engine.run_job(
            task_for(graph, "bppr", 8192, config.quick), [8192.0],
            seed=config.seed,
        )
        heavy_seconds = 6000.0 if heavy.overloaded else heavy.seconds
        return heavy_seconds / light.seconds

    with_knee = one_batch_ratio(baseline)
    without_knee = one_batch_ratio(_engine_without("knee", cluster))
    result.add_row(
        mechanism="congestion knee",
        probe="time(8192)/time(1024) at 1 batch (linear baseline: 8x)",
        **{"with": f"{with_knee:.1f}x", "without": f"{without_knee:.1f}x"},
    )
    result.claim(
        "the superlinear Figure-6 jump needs the congestion knee",
        with_knee > 12.0 and without_knee < 12.0,
    )

    # --- residual memory: the second batch's burden --------------------
    def second_batch_penalty(engine):
        combined = engine.run_job(
            task_for(graph, "bppr", 12288, config.quick),
            [6144.0, 6144.0],
            seed=config.seed,
        )
        solo = engine.run_job(
            task_for(graph, "bppr", 6144, config.quick), [6144.0],
            seed=config.seed,
        )
        if combined.overloaded or solo.overloaded:
            return float("inf")
        return combined.seconds / (2 * solo.seconds)

    with_residual = second_batch_penalty(baseline)
    without_residual = second_batch_penalty(
        _engine_without("residual", cluster)
    )
    result.add_row(
        mechanism="residual memory",
        probe="two-batch time / 2x solo time (W=12288)",
        **{
            "with": f"{with_residual:.2f}x",
            "without": f"{without_residual:.2f}x",
        },
    )
    result.claim(
        "the Figure-9 residual carry penalty needs residual tracking",
        with_residual > without_residual + 0.01,
    )

    # --- round overheads: Table 3's rising tail ------------------------
    def tail_slope(engine):
        few = engine.run_job(
            task_for(graph, "bppr", 2048, config.quick), [512.0] * 4,
            seed=config.seed,
        )
        many = engine.run_job(
            task_for(graph, "bppr", 2048, config.quick), [64.0] * 32,
            seed=config.seed,
        )
        return many.seconds / few.seconds

    with_overheads = tail_slope(baseline)
    without_overheads = tail_slope(_engine_without("overheads", cluster))
    result.add_row(
        mechanism="round overheads",
        probe="time(32 batches)/time(4 batches), W=2048",
        **{
            "with": f"{with_overheads:.2f}x",
            "without": f"{without_overheads:.2f}x",
        },
    )
    result.claim(
        "the many-batch tail needs barrier/startup overheads",
        with_overheads > 1.15 and without_overheads < with_overheads,
    )

    # --- thrash: overload cells ----------------------------------------
    # Four batches keep per-round congestion mild; the overload then
    # comes from accumulated residual + buffers exceeding the limit.
    heavy_with = baseline.run_job(
        task_for(graph, "bppr", 24576, config.quick), [6144.0] * 4,
        seed=config.seed,
    )
    heavy_without = _engine_without("thrash", cluster).run_job(
        task_for(graph, "bppr", 24576, config.quick), [6144.0] * 4,
        seed=config.seed,
    )
    result.add_row(
        mechanism="thrash/overload",
        probe="W=24576 in 4 batches (memory-bound, congestion mild)",
        **{
            "with": heavy_with.time_label(),
            "without": heavy_without.time_label(),
        },
    )
    result.claim(
        "overload cells need the memory policy",
        heavy_with.overloaded and not heavy_without.overloaded,
    )
    return result
