"""Experiment harness: one module per paper figure/table.

Every experiment implements the same protocol — ``run(config) ->
ExperimentResult`` — and registers itself in
:mod:`repro.experiments.runner`. Results carry the paper's reported
values next to the measured ones so ``EXPERIMENTS.md`` and the
benchmark suite can check shapes (who wins, where crossovers fall)
rather than absolute seconds.
"""

from repro.experiments.base import (
    ExperimentConfig,
    ExperimentResult,
    format_table,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
]
