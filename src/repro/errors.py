"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
conditions such as a simulated cluster overload.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class GraphFormatError(ReproError):
    """An edge list or serialized graph could not be parsed."""


class PartitionError(ReproError):
    """A partitioning request could not be satisfied."""


class EngineError(ReproError):
    """A vertex-centric engine was used incorrectly."""


class UnknownEngineError(EngineError):
    """The engine registry has no engine with the requested name."""


class TaskError(ReproError):
    """A benchmark task was configured or driven incorrectly."""


class BatchingError(ReproError):
    """A batching scheme is invalid (empty, negative, or wrong total)."""


class OverloadError(ReproError):
    """A simulated machine exceeded its memory/overload limits.

    Engines usually *report* overload through metrics rather than raising,
    mirroring the paper's treatment (results are marked "overload" at the
    6000 s cutoff); this exception exists for strict-mode callers.
    """


class TuningError(ReproError):
    """The tuning framework failed to train or plan a schedule."""


class FitError(TuningError):
    """Levenberg-Marquardt failed to converge to a usable fit."""
