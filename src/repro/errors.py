"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
conditions such as a simulated cluster overload.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class GraphFormatError(ReproError):
    """An edge list or serialized graph could not be parsed."""


class PartitionError(ReproError):
    """A partitioning request could not be satisfied."""


class EngineError(ReproError):
    """A vertex-centric engine was used incorrectly."""


class UnknownEngineError(EngineError):
    """The engine registry has no engine with the requested name."""


class TaskError(ReproError):
    """A benchmark task was configured or driven incorrectly."""


class BatchingError(ReproError):
    """A batching scheme is invalid (empty, negative, or wrong total)."""


class OverloadError(ReproError):
    """A simulated machine exceeded its memory/overload limits.

    Engines usually *report* overload through metrics rather than raising,
    mirroring the paper's treatment (results are marked "overload" at the
    6000 s cutoff); this exception exists for strict-mode callers
    (``run_job(..., on_overload="raise")``). The instance carries the
    context of the failure: which machine spec overloaded, the peak
    memory that broke it, and where in the job it happened.
    """

    def __init__(
        self,
        message: str,
        *,
        machine: Optional[str] = None,
        peak_memory_bytes: Optional[float] = None,
        limit_bytes: Optional[float] = None,
        batch_index: Optional[int] = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.machine = machine
        self.peak_memory_bytes = peak_memory_bytes
        self.limit_bytes = limit_bytes
        self.batch_index = batch_index
        self.reason = reason


class FaultError(ReproError):
    """A fault-injection plan or event was configured incorrectly."""


class RecoveryError(ReproError):
    """Overload recovery exhausted its retry budget without completing.

    ``history`` holds the retry attempts made before giving up (the same
    records a successful run stores in ``JobMetrics.retry_history``).
    """

    def __init__(self, message: str, history: Optional[list] = None) -> None:
        super().__init__(message)
        self.history = list(history or [])


class WorkerCrashError(ReproError):
    """A pool worker process kept dying while computing one item.

    Raised by :mod:`repro.perf.parallel` after the isolated retry
    budget is exhausted. ``item_index`` identifies the offending item;
    ``attempts`` is how many isolated retries were made.
    """

    def __init__(
        self,
        message: str,
        *,
        item_index: Optional[int] = None,
        attempts: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.item_index = item_index
        self.attempts = attempts


class CacheCorruptionError(ReproError):
    """An on-disk cache artifact failed checksum/format validation.

    The cache quarantines and rebuilds corrupt entries instead of
    propagating this error; it surfaces only through strict helpers.
    """


class TuningError(ReproError):
    """The tuning framework failed to train or plan a schedule."""


class SchedulingError(ReproError):
    """The online scheduling service could not make progress.

    Raised when admission control finds the memory budget below the
    model's constant terms (no batch can ever fit, even after flushing
    all residual memory) or the arrival stream is configured
    inconsistently.
    """


class FitError(TuningError):
    """Levenberg-Marquardt failed to converge to a usable fit."""
