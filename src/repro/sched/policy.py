"""Serving policy: priority lanes, aging, preemption, and shedding.

:class:`ServicePolicy` is the one knob bundle the
:class:`~repro.sched.service.SchedulerService` consults for every
decision beyond admission arithmetic:

* **priority lanes** — requests carry a class (0 = most urgent); the
  scheduler serves the numerically lowest *effective* class first;
* **aging** — a queued request's effective class drops by one for
  every ``aging_seconds`` it has waited, so low-priority work cannot
  starve behind a steady high-priority stream (classic multilevel
  feedback aging);
* **preemption** — when enabled, a running batch is suspended at the
  next superstep barrier (PR 7's :class:`~repro.engines.base.BatchCheckpoint`)
  once a strictly more urgent request of a *different* kind is
  waiting. Kinds whose kernels draw per-round RNG (BPPR) forbid
  interleaving two in-flight batches of the same kind, so same-kind
  waiters never trigger a suspend — they simply extend the current
  lane;
* **shedding** — a bounded pending queue plus an optional
  residual-memory watermark reject the least urgent work
  deterministically, with a ``Retry-After``-style hint, instead of
  growing the queue without bound.

The default-constructed policy reproduces the legacy FIFO service
byte for byte: one class collapses every request to effective class
0, so selection order degenerates to ``(arrival_seconds, task_id)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sched.arrivals import TaskRequest

#: Queue bound applied when the caller does not pick one. Generous —
#: it exists to stop unbounded growth, not to shape normal traffic.
DEFAULT_MAX_QUEUE = 4096

#: Default seconds of queueing that promote a request one class.
DEFAULT_AGING_SECONDS = 120.0

#: A preempting deadline must be within this many seconds of blowing.
DEFAULT_PREEMPT_MARGIN_SECONDS = 30.0

#: Ceiling on suspensions of one batch — bounds suspend/resume churn
#: so a batch always finishes (no livelock under hostile arrivals).
DEFAULT_MAX_SUSPENDS_PER_BATCH = 8

#: Floor for the Retry-After hint attached to shed requests.
DEFAULT_RETRY_AFTER_FLOOR_SECONDS = 1.0

#: Table 4's sync/async split as a routing table: async-capable kinds
#: run on GraphLab's asynchronous mode, while the heavy batched walk
#: workloads stay on Pregel+ (the paper's strongest sync engine for
#: them). ``ServicePolicy(routes=TABLE4_ROUTES)`` turns the table into
#: a live per-kind dispatch policy.
TABLE4_ROUTES: Mapping[str, str] = {
    "pagerank": "graphlab(async)",
    "mssp": "graphlab(async)",
    "bppr": "pregel+",
    "bppr-query": "pregel+",
    "bkhs": "pregel+",
}

#: Pairs-tuple form of a mapping field on the frozen policy (sorted,
#: hashable, order-independent equality).
_Pairs = Tuple[Tuple[str, object], ...]


def _freeze_mapping(
    value: Optional[Union[Mapping, _Pairs]], field_name: str
) -> Optional[_Pairs]:
    """Normalise a mapping-valued policy field to sorted key/value
    pairs so the frozen dataclass stays hashable and two policies with
    the same entries compare equal regardless of insertion order."""
    if value is None:
        return None
    items = dict(value).items()
    for key, _ in items:
        if not isinstance(key, str) or not key:
            raise ConfigurationError(
                f"{field_name} keys must be non-empty strings"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class ServicePolicy:
    """Priority/preemption/shedding knobs for the scheduler service."""

    #: number of priority classes; 1 = legacy FIFO (priorities ignored).
    priority_classes: int = 1
    #: seconds of queueing that promote a request one class; ``None``
    #: disables aging (effective class is static).
    aging_seconds: Optional[float] = DEFAULT_AGING_SECONDS
    #: suspend the running batch for more urgent cross-kind waiters.
    preempt: bool = False
    #: ``"deadline"`` preempts only when a more urgent waiter's
    #: deadline is within ``preempt_margin_seconds`` of blowing;
    #: ``"eager"`` preempts for any strictly more urgent waiter.
    preempt_rule: str = "deadline"
    preempt_margin_seconds: float = DEFAULT_PREEMPT_MARGIN_SECONDS
    #: when set, a batch only suspends after this many rounds of the
    #: current segment — a fault-timing-invariant trigger (round
    #: counts never depend on injected fault costs), used by the
    #: chaos determinism scenarios.
    preempt_after_rounds: Optional[int] = None
    max_suspends_per_batch: int = DEFAULT_MAX_SUSPENDS_PER_BATCH
    #: pending-queue depth bound; ``None`` = unbounded (discouraged).
    max_queue: Optional[int] = DEFAULT_MAX_QUEUE
    #: shed lowest-class arrivals once admitted+pinned residual memory
    #: exceeds this fraction of the admission budget; ``None`` = off.
    shed_watermark: Optional[float] = None
    #: drop queued, unstarted requests whose deadline already passed.
    drop_expired: bool = False
    retry_after_floor_seconds: float = DEFAULT_RETRY_AFTER_FLOOR_SECONDS
    #: total intra-task kernel workers the service may hand out
    #: (Hauck et al.'s intra-query axis): each admitted batch runs its
    #: sharded kernel rounds with its *share* of this pool — the total
    #: split across the sessions concurrently in flight (running plus
    #: suspended mid-batch), recomputed as batches start, suspend, and
    #: resume. 0 (the default) never touches the kernel-pool
    #: configuration, so every schedule stays byte-identical to the
    #: pre-parallel service.
    intra_workers: int = 0
    #: per-kind engine routing (kind → engine name, e.g.
    #: :data:`TABLE4_ROUTES`). ``None`` (the default) runs every kind
    #: on the service's base engine — the legacy single-engine loop.
    #: Unrouted kinds also fall back to the base engine.
    routes: Optional[Mapping[str, str]] = None
    #: per-tenant memory quotas as *fractions of the shared admission
    #: budget* (tenant → fraction in (0, 1]). ``None`` disables tenant
    #: accounting entirely; tenants absent from the mapping are
    #: unconstrained (the global Equation-1 budget still applies).
    tenant_quotas: Optional[Mapping[str, float]] = None
    #: per-tenant static priority class (tenant → class, 0 = most
    #: urgent), overriding the request's own class. ``None`` keeps the
    #: request-carried priorities.
    tenant_priorities: Optional[Mapping[str, int]] = None
    #: serve repeat queries from the content-keyed result cache and
    #: coalesce in-flight duplicates onto one execution. Off by
    #: default: the cache-off loop never computes result payloads, so
    #: it stays byte-identical to the pre-cache service.
    result_cache: bool = False
    #: seconds a cached result stays servable on the virtual clock;
    #: ``None`` = no expiry.
    result_ttl_seconds: Optional[float] = None
    #: LRU bytes budget for cached result payloads; ``None`` = no
    #: bound (entries only leave via TTL expiry).
    result_cache_bytes: Optional[float] = None
    #: online ask-tell calibration (DESIGN.md §15): every executed
    #: batch's observed (workload, peak, residual, seconds) is told
    #: back to the per-kind calibrator, admission re-prices against the
    #: refreshed model between batches, and fitted coefficients persist
    #: in the artifact cache so a restart skips probe training. Off by
    #: default: the static one-shot fit stays byte-identical.
    calibrate: bool = False
    #: size each batch's intra-task worker share from its predicted
    #: seconds and deadline slack instead of an even pool split
    #: (requires ``intra_workers > 0``). Off by default (even split).
    cost_shares: bool = False
    #: cost-aware result-cache admission: only store payloads whose
    #: predicted recompute seconds meet this threshold. ``None`` (the
    #: default) admits every payload, the legacy behaviour.
    cache_min_seconds: Optional[float] = None
    #: per-tenant result-cache byte quotas as *fractions of
    #: result_cache_bytes* (tenant → fraction in (0, 1]), mirroring
    #: ``tenant_quotas`` on the admission budget. ``None`` disables
    #: per-tenant cache accounting.
    tenant_cache_quotas: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "routes", _freeze_mapping(self.routes, "routes")
        )
        object.__setattr__(
            self,
            "tenant_quotas",
            _freeze_mapping(self.tenant_quotas, "tenant_quotas"),
        )
        object.__setattr__(
            self,
            "tenant_priorities",
            _freeze_mapping(self.tenant_priorities, "tenant_priorities"),
        )
        object.__setattr__(
            self,
            "tenant_cache_quotas",
            _freeze_mapping(self.tenant_cache_quotas, "tenant_cache_quotas"),
        )
        if self.priority_classes < 1:
            raise ConfigurationError("priority_classes must be >= 1")
        if self.aging_seconds is not None and self.aging_seconds <= 0:
            raise ConfigurationError("aging_seconds must be positive")
        if self.preempt_rule not in ("deadline", "eager"):
            raise ConfigurationError(
                f"preempt_rule must be 'deadline' or 'eager', "
                f"got {self.preempt_rule!r}"
            )
        if self.preempt_margin_seconds < 0:
            raise ConfigurationError(
                "preempt_margin_seconds must be non-negative"
            )
        if (
            self.preempt_after_rounds is not None
            and self.preempt_after_rounds < 1
        ):
            raise ConfigurationError(
                "preempt_after_rounds must be a positive round count"
            )
        if self.max_suspends_per_batch < 0:
            raise ConfigurationError(
                "max_suspends_per_batch must be non-negative"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.shed_watermark is not None and not (
            0.0 <= self.shed_watermark <= 1.0
        ):
            raise ConfigurationError("shed_watermark must be in [0, 1]")
        if self.retry_after_floor_seconds < 0:
            raise ConfigurationError(
                "retry_after_floor_seconds must be non-negative"
            )
        if self.intra_workers < 0:
            raise ConfigurationError("intra_workers must be >= 0")
        if self.routes is not None:
            for _, engine in self.routes:
                if not isinstance(engine, str) or not engine:
                    raise ConfigurationError(
                        "routes values must be engine names"
                    )
        if self.tenant_quotas is not None:
            for tenant, fraction in self.tenant_quotas:
                if not 0 < float(fraction) <= 1:
                    raise ConfigurationError(
                        f"tenant quota for {tenant!r} must be a budget "
                        f"fraction in (0, 1], got {fraction!r}"
                    )
        if self.tenant_priorities is not None:
            for tenant, cls in self.tenant_priorities:
                if int(cls) < 0:
                    raise ConfigurationError(
                        f"tenant priority for {tenant!r} must be >= 0"
                    )
        if (
            self.result_ttl_seconds is not None
            and self.result_ttl_seconds <= 0
        ):
            raise ConfigurationError("result_ttl_seconds must be positive")
        if (
            self.result_cache_bytes is not None
            and self.result_cache_bytes <= 0
        ):
            raise ConfigurationError("result_cache_bytes must be positive")
        if self.cost_shares and self.intra_workers <= 0:
            raise ConfigurationError(
                "cost_shares requires intra_workers > 0 (there is no "
                "worker pool to size shares from)"
            )
        if (
            self.cache_min_seconds is not None
            and self.cache_min_seconds < 0
        ):
            raise ConfigurationError(
                "cache_min_seconds must be non-negative"
            )
        if self.cache_min_seconds is not None and not self.result_cache:
            raise ConfigurationError(
                "cache_min_seconds requires result_cache"
            )
        if self.tenant_cache_quotas is not None:
            if not self.result_cache:
                raise ConfigurationError(
                    "tenant_cache_quotas requires result_cache"
                )
            if self.result_cache_bytes is None:
                raise ConfigurationError(
                    "tenant_cache_quotas requires result_cache_bytes "
                    "(quotas are fractions of the cache bytes budget)"
                )
            for tenant, fraction in self.tenant_cache_quotas:
                if not 0 < float(fraction) <= 1:
                    raise ConfigurationError(
                        f"tenant cache quota for {tenant!r} must be a "
                        f"fraction in (0, 1], got {fraction!r}"
                    )

    @property
    def lowest_class(self) -> int:
        return self.priority_classes - 1

    def route_for(self, kind: str) -> Optional[str]:
        """Engine name ``kind`` is routed to, or ``None`` (base engine)."""
        if self.routes is None:
            return None
        for route_kind, engine in self.routes:
            if route_kind == kind:
                return str(engine)
        return None

    def quota_fraction(self, tenant: str) -> Optional[float]:
        """The tenant's budget-fraction quota, or ``None`` (unbounded)."""
        if self.tenant_quotas is None:
            return None
        for quota_tenant, fraction in self.tenant_quotas:
            if quota_tenant == tenant:
                return float(fraction)
        return None

    def cache_quota_fraction(self, tenant: str) -> Optional[float]:
        """The tenant's result-cache byte-fraction quota, or ``None``."""
        if self.tenant_cache_quotas is None:
            return None
        for quota_tenant, fraction in self.tenant_cache_quotas:
            if quota_tenant == tenant:
                return float(fraction)
        return None

    def worker_share(self, concurrent_sessions: int) -> int:
        """Intra-task workers one session gets with ``concurrent_sessions``
        in flight: an even split of the pool, floored at one worker (a
        session never loses its compute entirely; over-subscription is
        bounded by the session count)."""
        if self.intra_workers <= 0:
            return 0
        return max(1, self.intra_workers // max(int(concurrent_sessions), 1))

    def static_class(self, request: TaskRequest) -> int:
        """The request's class clamped to the configured lane count.

        A tenant listed in ``tenant_priorities`` overrides the class
        the request arrived with — the tenant's contract outranks the
        caller's self-declared urgency.
        """
        priority = int(request.priority)
        if self.tenant_priorities is not None:
            for tenant, cls in self.tenant_priorities:
                if tenant == getattr(request, "tenant", "default"):
                    priority = int(cls)
                    break
        return min(max(priority, 0), self.lowest_class)

    def effective_class(self, request: TaskRequest, now: float) -> int:
        """Static class minus one lane per ``aging_seconds`` queued."""
        cls = self.static_class(request)
        if self.aging_seconds is not None and cls > 0:
            waited = max(0.0, now - request.arrival_seconds)
            cls -= int(waited // self.aging_seconds)
        return max(cls, 0)

    def selection_key(self, request: TaskRequest, now: float):
        """Total order for serving: most urgent effective class first,
        FIFO (arrival, then id) within a class. With one class this is
        exactly the legacy FIFO order."""
        return (
            self.effective_class(request, now),
            request.arrival_seconds,
            request.task_id,
        )
