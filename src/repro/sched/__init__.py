"""Online, admission-controlled scheduling (``repro.sched``).

The offline toolkit plans one workload, runs it, and exits. This
package turns the same machinery into a *service*: unit-task requests
(BPPR/MSSP/BKHS queries) arrive on a seeded stream, admission control
sizes each batch against the fitted memory models ``M*(W)``/``Mr(W)``
from :mod:`repro.tuning`, batches form online (largest admissible
first, per the paper's residual-memory insight), and overloads are
recovered by abort + re-split using the fault machinery.

Modules
-------
:mod:`repro.sched.arrivals`
    Seeded Poisson arrival streams of task requests.
:mod:`repro.sched.admission`
    Shared-budget admission control over per-kind memory models.
:mod:`repro.sched.policy`
    Priority lanes, aging, preemption, and shed-load policy.
:mod:`repro.sched.service`
    The queue-driven scheduler loop on persistent engine sessions.
"""

from repro.sched.admission import AdmissionController
from repro.sched.arrivals import (
    DEFAULT_TENANT,
    TaskRequest,
    generate_arrivals,
)
from repro.sched.policy import TABLE4_ROUTES, ServicePolicy
from repro.sched.service import SchedulerService, run_degenerate

__all__ = [
    "AdmissionController",
    "DEFAULT_TENANT",
    "TABLE4_ROUTES",
    "ServicePolicy",
    "TaskRequest",
    "generate_arrivals",
    "SchedulerService",
    "run_degenerate",
]
