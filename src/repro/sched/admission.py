"""Shared-budget admission control over per-kind memory models.

The offline planner (Equation 5) sizes batches for *one* task family.
The service runs several families concurrently on one cluster, so the
budget ``p·M`` is shared: the residual memory of every family's
completed work counts against the headroom of the next batch,
whichever kind it is::

    Σ_k Mr_k(done_k) + M*_j(W_next) ≤ p · M      for the next kind j

Each kind keeps its own :class:`~repro.tuning.planner.IncrementalPlanner`
(the incremental Equation-5 state); the controller stitches them
together by charging every *other* kind's projected residual against a
planner's budget before asking it for the admissible workload. With a
single kind this collapses exactly to the offline
:func:`~repro.tuning.planner.plan_batches` iteration — the degenerate
schedule.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.cluster.machine import MachineSpec
from repro.errors import SchedulingError
from repro.tuning.memory_model import MemoryCostModel
from repro.tuning.planner import DEFAULT_OVERLOAD_FRACTION, IncrementalPlanner


class AdmissionController:
    """Admission control for the scheduling service.

    Parameters
    ----------
    models:
        fitted ``(M*, Mr)`` pair per task kind, in the same scaled byte
        units as ``machine.memory_bytes``.
    machine:
        target machine spec; the shared budget is
        ``overload_fraction * machine.memory_bytes``.
    overload_fraction:
        the paper's overloading parameter ``p``.
    """

    def __init__(
        self,
        models: Mapping[str, MemoryCostModel],
        machine: MachineSpec,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    ) -> None:
        if not models:
            raise SchedulingError("at least one kind's memory model required")
        if not 0 < overload_fraction <= 1:
            raise SchedulingError("overload_fraction must be in (0, 1]")
        self.machine = machine
        self.overload_fraction = float(overload_fraction)
        #: the shared planning budget ``p·M`` in scaled bytes.
        self.budget = self.overload_fraction * machine.memory_bytes
        #: per-kind incremental Equation-5 state.
        self.planners: Dict[str, IncrementalPlanner] = {
            kind: IncrementalPlanner(
                model, machine, overload_fraction, integral=True
            )
            for kind, model in models.items()
        }
        #: out-of-band reservations (tag → scaled bytes): checkpointed
        #: state of batches suspended at a barrier. Pins charge the
        #: shared budget like every kind's residual but survive
        #: :meth:`release_all` — a backpressure flush frees *emitted*
        #: results, not the frozen state a resume still needs.
        self._pins: Dict[str, float] = {}

    def pin(self, tag: str, bytes_: float) -> None:
        """Reserve ``bytes_`` of the shared budget under ``tag``."""
        if bytes_ < 0:
            raise SchedulingError("pinned bytes must be non-negative")
        self._pins[tag] = float(bytes_)

    def unpin(self, tag: str) -> float:
        """Drop the reservation under ``tag`` (0.0 if absent)."""
        return self._pins.pop(tag, 0.0)

    def pinned_bytes(self) -> float:
        """Total out-of-band reservations (suspended batches)."""
        return sum(self._pins.values())

    def _check_kind(self, kind: str) -> IncrementalPlanner:
        """Fetch the planner for ``kind`` with its budget reduced by the
        projected residual of every *other* kind's admitted work and
        every pinned (suspended-batch) reservation.

        Kinds that have admitted nothing contribute zero (their
        constant residual term only materialises once they run), so a
        single-kind stream sees exactly the offline planner's budget.
        """
        if kind not in self.planners:
            known = ", ".join(sorted(self.planners))
            raise SchedulingError(f"unknown task kind {kind!r}; known: {known}")
        planner = self.planners[kind]
        others = sum(
            p.residual_bytes()
            for k, p in self.planners.items()
            if k != kind and p.done > 0
        )
        others += self.pinned_bytes()
        planner.budget = self.budget - others
        return planner

    def residual_bytes(self) -> float:
        """Projected residual memory of all admitted work (all kinds)."""
        return sum(
            p.residual_bytes() for p in self.planners.values() if p.done > 0
        )

    def admissible_units(self, kind: str) -> float:
        """Largest admissible next batch for ``kind`` (integral units)."""
        return self._check_kind(kind).admissible_workload()

    def admits(self, kind: str, units: float) -> bool:
        """Whether a ``units``-sized batch of ``kind`` fits right now."""
        return 0 < units <= self.admissible_units(kind)

    def admit(self, kind: str, units: float) -> None:
        """Charge an admitted batch against the shared budget."""
        self._check_kind(kind).admit(units)

    def release_all(self) -> float:
        """Credit every kind's residual back (a full backpressure flush).

        Returns the projected residual bytes that were released.
        """
        released = self.residual_bytes()
        for planner in self.planners.values():
            planner.release()
        return released

    def projected_bytes(self, kind: str, units: float) -> float:
        """Projected ``Σ Mr + M*`` if a ``units`` batch of ``kind`` ran now.

        The admission invariant the property tests check: for every
        admitted batch this value never exceeds the shared budget.
        """
        planner = self._check_kind(kind)
        others = sum(
            p.residual_bytes()
            for k, p in self.planners.items()
            if k != kind and p.done > 0
        )
        others += self.pinned_bytes()
        return (
            others + planner.residual_bytes() + float(planner.model.peak(units))
        )
