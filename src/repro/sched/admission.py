"""Shared-budget admission control over per-kind memory models.

The offline planner (Equation 5) sizes batches for *one* task family.
The service runs several families concurrently on one cluster, so the
budget ``p·M`` is shared: the residual memory of every family's
completed work counts against the headroom of the next batch,
whichever kind it is::

    Σ_k Mr_k(done_k) + M*_j(W_next) ≤ p · M      for the next kind j

Each kind keeps its own :class:`~repro.tuning.planner.IncrementalPlanner`
(the incremental Equation-5 state); the controller stitches them
together by charging every *other* kind's projected residual against a
planner's budget before asking it for the admissible workload. With a
single kind this collapses exactly to the offline
:func:`~repro.tuning.planner.plan_batches` iteration — the degenerate
schedule.

Multi-tenant quotas layer a second, per-tenant constraint on top of the
global Equation 1: each tenant's *charged* bytes — the residual of the
units it has admitted, ``Σ_k Mr_k(done_{t,k})``, plus its share of any
pinned (suspended-batch) state — may never exceed its byte quota.
Quotas only refine how the shared budget is split; the global invariant
is unchanged, and with no quotas configured the controller's behaviour
is byte-identical to the single-tenant release.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.cluster.machine import MachineSpec
from repro.errors import SchedulingError
from repro.tuning.memory_model import MemoryCostModel
from repro.tuning.planner import DEFAULT_OVERLOAD_FRACTION, IncrementalPlanner


class AdmissionController:
    """Admission control for the scheduling service.

    Parameters
    ----------
    models:
        fitted ``(M*, Mr)`` pair per task kind, in the same scaled byte
        units as ``machine.memory_bytes``.
    machine:
        target machine spec; the shared budget is
        ``overload_fraction * machine.memory_bytes``.
    overload_fraction:
        the paper's overloading parameter ``p``.
    tenant_quotas:
        optional per-tenant byte quotas (same scaled units as the
        budget). Tenants absent from the mapping are unconstrained;
        ``None`` disables tenant accounting entirely.
    """

    def __init__(
        self,
        models: Mapping[str, MemoryCostModel],
        machine: MachineSpec,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
        tenant_quotas: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not models:
            raise SchedulingError("at least one kind's memory model required")
        if not 0 < overload_fraction <= 1:
            raise SchedulingError("overload_fraction must be in (0, 1]")
        self.machine = machine
        self.overload_fraction = float(overload_fraction)
        #: the shared planning budget ``p·M`` in scaled bytes.
        self.budget = self.overload_fraction * machine.memory_bytes
        #: per-kind incremental Equation-5 state.
        self.planners: Dict[str, IncrementalPlanner] = {
            kind: IncrementalPlanner(
                model, machine, overload_fraction, integral=True
            )
            for kind, model in models.items()
        }
        #: out-of-band reservations (tag → scaled bytes): checkpointed
        #: state of batches suspended at a barrier. Pins charge the
        #: shared budget like every kind's residual but survive
        #: :meth:`release_all` — a backpressure flush frees *emitted*
        #: results, not the frozen state a resume still needs.
        self._pins: Dict[str, float] = {}
        #: per-tenant byte quotas (``None`` = tenant accounting off).
        self.tenant_quotas: Optional[Dict[str, float]] = (
            None
            if tenant_quotas is None
            else {str(t): float(q) for t, q in dict(tenant_quotas).items()}
        )
        if self.tenant_quotas is not None:
            for tenant, quota in self.tenant_quotas.items():
                if quota <= 0:
                    raise SchedulingError(
                        f"tenant quota for {tenant!r} must be positive"
                    )
        #: tenant → kind → admitted units whose residual is resident.
        self._tenant_done: Dict[str, Dict[str, float]] = {}
        #: pin tag → tenant → bytes (tenant shares of suspended state).
        self._pin_tenants: Dict[str, Dict[str, float]] = {}

    def pin(
        self,
        tag: str,
        bytes_: float,
        tenants: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Reserve ``bytes_`` of the shared budget under ``tag``.

        ``tenants`` optionally attributes the reservation to tenants
        (tenant → bytes share) so quota checks see suspended state.
        """
        if bytes_ < 0:
            raise SchedulingError("pinned bytes must be non-negative")
        self._pins[tag] = float(bytes_)
        if tenants:
            self._pin_tenants[tag] = {
                str(t): float(b) for t, b in dict(tenants).items()
            }
        else:
            self._pin_tenants.pop(tag, None)

    def unpin(self, tag: str) -> float:
        """Drop the reservation under ``tag`` (0.0 if absent)."""
        self._pin_tenants.pop(tag, None)
        return self._pins.pop(tag, 0.0)

    def pinned_bytes(self) -> float:
        """Total out-of-band reservations (suspended batches)."""
        return sum(self._pins.values())

    def _check_kind(self, kind: str) -> IncrementalPlanner:
        """Fetch the planner for ``kind`` with its budget reduced by the
        projected residual of every *other* kind's admitted work and
        every pinned (suspended-batch) reservation.

        Kinds that have admitted nothing contribute zero (their
        constant residual term only materialises once they run), so a
        single-kind stream sees exactly the offline planner's budget.
        """
        if kind not in self.planners:
            known = ", ".join(sorted(self.planners))
            raise SchedulingError(f"unknown task kind {kind!r}; known: {known}")
        planner = self.planners[kind]
        others = sum(
            p.residual_bytes()
            for k, p in self.planners.items()
            if k != kind and p.done > 0
        )
        others += self.pinned_bytes()
        planner.budget = self.budget - others
        return planner

    def residual_bytes(self) -> float:
        """Projected residual memory of all admitted work (all kinds)."""
        return sum(
            p.residual_bytes() for p in self.planners.values() if p.done > 0
        )

    def admissible_units(self, kind: str) -> float:
        """Largest admissible next batch for ``kind`` (integral units)."""
        return self._check_kind(kind).admissible_workload()

    def admits(self, kind: str, units: float) -> bool:
        """Whether a ``units``-sized batch of ``kind`` fits right now."""
        return 0 < units <= self.admissible_units(kind)

    def admit(
        self,
        kind: str,
        units: float,
        tenant_units: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Charge an admitted batch against the shared budget.

        ``tenant_units`` attributes the batch's units to the tenants it
        served (tenant → units), feeding the per-tenant residual
        accounting. Omitting it leaves tenant charges untouched — the
        single-tenant code path.
        """
        self._check_kind(kind).admit(units)
        if tenant_units:
            for tenant, take in tenant_units.items():
                if take <= 0:
                    continue
                done = self._tenant_done.setdefault(str(tenant), {})
                done[kind] = done.get(kind, 0.0) + float(take)

    # ------------------------------------------------------------------
    # Per-tenant quota accounting
    # ------------------------------------------------------------------
    def tenant_resident_bytes(self, tenant: str) -> float:
        """Projected residual memory of the tenant's admitted units:
        ``Σ_k Mr_k(done_{t,k})`` over kinds the tenant has run. Kinds
        with nothing admitted contribute zero — a tenant is only
        charged for work it actually ran."""
        done = self._tenant_done.get(tenant)
        if not done:
            return 0.0
        total = 0.0
        for kind, units in done.items():
            if units > 0 and kind in self.planners:
                total += float(self.planners[kind].model.residual(units))
        return total

    def tenant_pinned_bytes(self, tenant: str) -> float:
        """The tenant's share of pinned (suspended-batch) state."""
        return sum(
            shares.get(tenant, 0.0)
            for shares in self._pin_tenants.values()
        )

    def tenant_charged_bytes(self, tenant: str) -> float:
        """Resident plus pinned bytes — the value quotas bound."""
        return self.tenant_resident_bytes(tenant) + self.tenant_pinned_bytes(
            tenant
        )

    def tenant_quota(self, tenant: str) -> Optional[float]:
        """The tenant's byte quota, or ``None`` when unconstrained."""
        if self.tenant_quotas is None:
            return None
        return self.tenant_quotas.get(tenant)

    def tenant_admissible_units(self, kind: str, tenant: str) -> float:
        """Largest additional ``kind`` batch the tenant's quota admits.

        Inverts the kind's residual model at the quota headroom left
        after the tenant's other charges — the per-tenant analogue of
        Equation 5. Unconstrained tenants get ``inf`` (only the global
        budget applies); a flat residual curve (no fitted growth term)
        also returns ``inf`` since units cannot move it.
        """
        quota = self.tenant_quota(tenant)
        if quota is None:
            return float("inf")
        if kind not in self.planners:
            known = ", ".join(sorted(self.planners))
            raise SchedulingError(f"unknown task kind {kind!r}; known: {known}")
        done = self._tenant_done.get(tenant, {}).get(kind, 0.0)
        residual = self.planners[kind].model.residual
        own = float(residual(done)) if done > 0 else 0.0
        headroom = quota - (self.tenant_charged_bytes(tenant) - own)
        if headroom <= 0:
            return 0.0
        if residual.a <= 0 or residual.b <= 0:
            return float("inf")
        allowed = residual.invert(headroom) - done
        return max(0.0, float(int(allowed)))

    def release_all(self) -> float:
        """Credit every kind's residual back (a full backpressure flush).

        Tenant residual charges flush with it — the results were
        shipped to their callers — while pinned tenant shares survive,
        like the pins themselves. Returns the projected residual bytes
        that were released.
        """
        released = self.residual_bytes()
        for planner in self.planners.values():
            planner.release()
        self._tenant_done.clear()
        return released

    def projected_bytes(self, kind: str, units: float) -> float:
        """Projected ``Σ Mr + M*`` if a ``units`` batch of ``kind`` ran now.

        The admission invariant the property tests check: for every
        admitted batch this value never exceeds the shared budget.
        """
        planner = self._check_kind(kind)
        others = sum(
            p.residual_bytes()
            for k, p in self.planners.items()
            if k != kind and p.done > 0
        )
        others += self.pinned_bytes()
        return (
            others + planner.residual_bytes() + float(planner.model.peak(units))
        )
