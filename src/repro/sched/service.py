"""The queue-driven scheduler loop (``vcrepro serve``).

The service owns one persistent :class:`~repro.engines.base.EngineSession`
per task kind (graph load, partitions, mirror plans and the scratch
arena survive across batches) and an
:class:`~repro.sched.admission.AdmissionController` over the fitted
memory models. The loop is event-driven on a simulated clock:

1. requests whose arrival time has passed join the FIFO queue;
2. the queue head's kind defines the next batch; admission control
   sizes it (largest admissible batch first — the paper's front-loaded
   insight falls out automatically, because residual memory accumulates
   and the admissible size shrinks);
3. the batch executes on the kind's session and the clock advances by
   its simulated seconds;
4. when admission cannot fit even one unit, the accumulated residual
   memory is flushed to the callers (backpressure) and the budget
   resets;
5. a batch that overloads anyway (model error) is aborted and its
   units retried under a re-split cap, reusing the
   :class:`~repro.faults.recovery.OverloadRecovery` policy.

A degenerate schedule — every unit pre-queued at time zero, a single
kind, a single planner pass — reproduces the legacy offline runner
byte-identically (see :func:`run_degenerate` and the determinism
suite).

PR 7 layers a :class:`~repro.sched.policy.ServicePolicy` on top of
that loop: priority lanes with aging replace strict FIFO selection, a
running batch can be *suspended at a superstep barrier* (the engine's
:class:`~repro.engines.base.BatchCheckpoint`) when a more urgent
cross-kind request would blow its deadline, the pending queue is
bounded, and arrivals past a residual-memory watermark are shed
deterministically with a ``Retry-After``-style hint. The
default-constructed policy reproduces the legacy FIFO loop byte for
byte.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engines.base import (
    BatchCheckpoint,
    EngineSession,
    SimulatedEngine,
)
from repro.errors import RecoveryError, SchedulingError
from repro.faults.recovery import OverloadRecovery
from repro.graph.csr import Graph, streaming_budget_bytes
from repro.perf import kernel_pool
from repro.perf.cache import ResultCache
from repro.rng import SeedLike
from repro.sched.admission import AdmissionController
from repro.sched.arrivals import DEFAULT_KINDS, TaskRequest
from repro.sched.policy import ServicePolicy
from repro.sim.metrics import (
    JobMetrics,
    ServiceMetrics,
    TaskLatency,
    pack_job,
)
from repro.tasks.base import make_task
from repro.tuning.calibrate import Calibrator
from repro.tuning.memory_model import MemoryCostModel
from repro.tuning.planner import DEFAULT_OVERLOAD_FRACTION, plan_batches
from repro.tuning.trainer import TaskFactory, train_memory_models

#: Default training reference workload for the per-kind memory models —
#: large enough for the probe ladder, small enough to train quickly.
DEFAULT_REFERENCE_WORKLOAD = 512.0

#: Per-unit host-state estimate for the ``--max-ram`` admission cap:
#: the dense kernel-state matrices are ``units × num_vertices`` rows
#: (:func:`repro.tasks.base.alloc_state_matrix`), and the kernels hold
#: two comparable matrices (dist/visited + pair_mask), so one unit
#: costs roughly two float64 rows of the vertex set.
STREAMING_STATE_BYTES_PER_VERTEX = 16.0


@dataclass
class _Pending:
    """A queued request and how many of its units remain unscheduled."""

    request: TaskRequest
    remaining: float
    #: clock time the batch containing the request's first unit started.
    started_seconds: Optional[float] = None
    #: units currently frozen inside a suspended batch — such a pending
    #: must never be shed or double-scheduled.
    inflight: float = 0.0


@dataclass
class _InFlight:
    """Service-side bookkeeping for one formed batch (running or
    suspended at a barrier)."""

    kind: str
    parts: List[Tuple[_Pending, float]]
    batch_units: float
    admissible: float
    projected: float
    #: residual logged at formation (batch_log reports this) and the
    #: value to restore on abort (reset by intervening flushes).
    residual_log: float
    residual_restore: float
    #: clock when the batch was first formed (latency start time).
    start_clock: float
    #: effective class of the head request at formation time.
    priority: int
    #: formation sequence number — resume order is oldest-first.
    order: int
    #: engine-side frozen state while suspended.
    checkpoint: Optional[BatchCheckpoint] = None
    #: units taken per tenant (empty when tenant accounting is off).
    tenant_units: Dict[str, float] = field(default_factory=dict)
    #: ``batch.seconds`` already charged to the service clock.
    charged_seconds: float = 0.0
    #: suspend/restore cost already charged to the service clock.
    charged_suspend_seconds: float = 0.0
    suspend_count: int = 0

    @property
    def pin_tag(self) -> str:
        return f"suspended:{self.kind}"


class SchedulerService:
    """Long-lived, admission-controlled scheduler over one engine.

    Parameters
    ----------
    engine:
        the simulated engine (bound to a cluster) that executes batches.
    graph:
        the dataset every request queries.
    kinds:
        task kinds the service accepts; a memory model is trained and a
        persistent session opened for each.
    seed:
        master seed for session RNG streams (same label derivation as
        the offline runner, so degenerate schedules match it exactly).
    overload_fraction:
        the paper's ``p``: fraction of machine memory admission may use.
    recovery:
        abort/re-split policy for batches that overload despite
        admission (memory-model error).
    reference_workload:
        training workload handed to the Section-5 probe ladder.
    record_rounds:
        include the per-round trace of every batch in the batch log
        (the determinism suite compares these streams byte for byte).
    """

    def __init__(
        self,
        engine: SimulatedEngine,
        graph: Graph,
        kinds: Sequence[str] = DEFAULT_KINDS,
        *,
        seed: SeedLike = None,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
        recovery: Optional[OverloadRecovery] = None,
        reference_workload: float = DEFAULT_REFERENCE_WORKLOAD,
        record_rounds: bool = False,
        task_params: Optional[Mapping[str, Mapping[str, object]]] = None,
        fault_plan=None,
        checkpoint_every: Optional[int] = None,
        policy: Optional[ServicePolicy] = None,
    ) -> None:
        if not kinds:
            raise SchedulingError("at least one task kind is required")
        #: priority/preemption/shedding policy; the default reproduces
        #: the legacy FIFO loop byte for byte.
        self.policy = policy or ServicePolicy()
        #: optional fault plan injected into every kind's session
        #: (rounds counted per session, as in the offline runner).
        self.fault_plan = fault_plan
        #: optional Pregel-style checkpoint cadence for the sessions.
        self.checkpoint_every = checkpoint_every
        self.engine = engine
        self.graph = graph
        self.kinds = tuple(kinds)
        self.seed = seed
        self.overload_fraction = float(overload_fraction)
        self.recovery = recovery or OverloadRecovery()
        self.reference_workload = float(reference_workload)
        self.record_rounds = record_rounds
        #: per-kind task keyword params (e.g. MSSP/BKHS sampling caps).
        self.task_params: Dict[str, Dict[str, object]] = {
            kind: dict(params)
            for kind, params in (task_params or {}).items()
        }
        #: per-kind engines from the policy's routing table, all bound
        #: to the base engine's cluster so every session draws from the
        #: one shared admission budget. Unrouted kinds (and the
        #: ``routes=None`` default) use the base engine itself — the
        #: legacy single-engine service, byte for byte.
        self.engines: Dict[str, SimulatedEngine] = {}
        opened: Dict[str, SimulatedEngine] = {engine.name: engine}
        for kind in self.kinds:
            route = self.policy.route_for(kind)
            if route is None or route == engine.name:
                self.engines[kind] = engine
            else:
                if route not in opened:
                    from repro.engines.registry import create_engine

                    opened[route] = create_engine(route, engine.cluster)
                self.engines[kind] = opened[route]
        #: per-kind ask-tell calibrators (DESIGN.md §15); empty unless a
        #: cost-model consumer is enabled, so the default service still
        #: runs the legacy one-shot trainer code path untouched.
        self.calibrators: Dict[str, Calibrator] = {}
        #: last calibrator version pushed into admission, per kind.
        self._model_versions: Dict[str, int] = {}
        #: payloads the cost-aware cache admission declined to store.
        self._cache_skips = 0
        use_calibrators = (
            self.policy.calibrate
            or self.policy.cost_shares
            or self.policy.cache_min_seconds is not None
        )
        if use_calibrators:
            models: Dict[str, MemoryCostModel] = {}
            for kind in self.kinds:
                if self.policy.calibrate:
                    # Warm restarts load the persisted coefficients and
                    # probe samples from the artifact cache — zero probe
                    # training runs, identical refit trajectory.
                    from repro.perf.cache import get_cache

                    calibrator = Calibrator.load_or_train(
                        self.engines[kind],
                        self._task_factory(kind),
                        self.reference_workload,
                        kind=kind,
                        graph_fingerprint=graph.fingerprint,
                        seed=seed,
                        cache=get_cache(),
                    )
                else:
                    calibrator = Calibrator.train(
                        self.engines[kind],
                        self._task_factory(kind),
                        self.reference_workload,
                        seed=seed,
                    )
                self.calibrators[kind] = calibrator
                self._model_versions[kind] = calibrator.version
                models[kind] = calibrator.model
        else:
            models = {
                kind: train_memory_models(
                    self.engines[kind],
                    self._task_factory(kind),
                    self.reference_workload,
                    seed=seed,
                )
                for kind in self.kinds
            }
        machine = engine.cluster.scaled_machine
        tenant_quotas: Optional[Dict[str, float]] = None
        if self.policy.tenant_quotas is not None:
            budget = self.overload_fraction * machine.memory_bytes
            tenant_quotas = {
                tenant: float(fraction) * budget
                for tenant, fraction in self.policy.tenant_quotas
            }
        self.admission = AdmissionController(
            models,
            machine,
            self.overload_fraction,
            tenant_quotas=tenant_quotas,
        )
        #: content-keyed result cache with single-flight coalescing;
        #: ``None`` (cache off) leaves every code path byte-identical
        #: to the pre-cache service.
        tenant_cache_bytes: Optional[Dict[str, float]] = None
        if self.policy.tenant_cache_quotas is not None:
            # Fractions of the cache bytes budget, mirroring the
            # admission quotas' fractions of the memory budget.
            tenant_cache_bytes = {
                tenant: float(fraction) * self.policy.result_cache_bytes
                for tenant, fraction in self.policy.tenant_cache_quotas
            }
        self.result_cache: Optional[ResultCache] = (
            ResultCache(
                ttl_seconds=self.policy.result_ttl_seconds,
                max_bytes=self.policy.result_cache_bytes,
                tenant_bytes=tenant_cache_bytes,
            )
            if self.policy.result_cache
            else None
        )
        #: completed response payloads by task id (``pack_job`` bytes),
        #: recorded only when the result cache is enabled.
        self.responses: Dict[int, bytes] = {}
        #: task id → content key for queued single-flight leaders, so a
        #: dropped leader abandons its key (and its joiners) while a
        #: watermark-shed duplicate never touches another leader's key.
        self._leaders: Dict[int, Tuple[object, ...]] = {}
        #: persistent per-kind sessions (opened lazily on first batch).
        self.sessions: Dict[str, EngineSession] = {}
        #: executed batches as ``(kind, BatchMetrics)`` — raw objects for
        #: the byte-identity tests; :class:`ServiceMetrics` carries the
        #: JSON-friendly summaries.
        self.executed_batches: List[Tuple[str, object]] = []
        #: running seconds-per-unit average over completed batches,
        #: feeding the Retry-After hint attached to shed requests.
        self._completed_units = 0.0
        self._completed_seconds = 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _task_factory(self, kind: str) -> TaskFactory:
        """Workload → TaskSpec factory for ``kind`` on the service graph."""
        params = self.task_params.get(kind, {})
        return lambda workload: make_task(
            kind, self.graph, workload, **params
        )

    def _session(self, kind: str) -> EngineSession:
        """The kind's persistent session, opened on first use.

        Sessions run with the job cutoff disabled: the service clock is
        unbounded, and overload is handled by abort/re-split instead of
        the offline 6000 s stamp.
        """
        if kind not in self.sessions:
            task = self._task_factory(kind)(self.reference_workload)
            session = self.engines[kind].open_session(
                task,
                self.seed,
                fault_plan=self.fault_plan,
                checkpoint_every=self.checkpoint_every,
                cutoff_seconds=None,
            )
            if self.policy.calibrate:
                # Tell-back hook: every completed batch reports its
                # observed (workload, peak, residual, seconds) to the
                # kind's calibrator straight from the engine.
                session.calibrator = self.calibrators.get(kind)
            self.sessions[kind] = session
        return self.sessions[kind]

    def _cost_worker_share(
        self,
        inflight: "_InFlight",
        concurrent_sessions: int,
        clock: float,
    ) -> int:
        """Cost-driven share (``policy.cost_shares``): interpolate from
        the even split toward the full pool as deadline pressure grows.

        Pressure is the batch's predicted seconds over the tightest
        member deadline's slack — a batch predicted to take as long as
        (or longer than) its slack gets the whole pool; a batch with
        generous slack (or no deadline, or no fitted seconds model)
        keeps the even split.
        """
        even = self.policy.worker_share(concurrent_sessions)
        calibrator = self.calibrators.get(inflight.kind)
        if calibrator is None:
            return even
        predicted = calibrator.predict_seconds(inflight.batch_units)
        if predicted is None:
            return even
        deadlines = [
            pending.request.deadline_at
            for pending, _ in inflight.parts
            if pending.request.deadline_at is not None
        ]
        if not deadlines:
            return even
        slack = min(deadlines) - clock
        if slack <= 0:
            pressure = 1.0
        else:
            pressure = min(1.0, predicted / slack)
        total = self.policy.intra_workers
        share = even + (total - even) * pressure
        return max(1, min(total, int(round(share))))

    def _apply_worker_share(
        self,
        concurrent_sessions: int,
        inflight: Optional["_InFlight"] = None,
        clock: float = 0.0,
    ) -> int:
        """Split the intra-task kernel pool across in-flight sessions.

        Called at every dispatch point (batch start and resume) with the
        number of sessions concurrently in flight — the one about to run
        plus any still suspended at a barrier. When the policy grants no
        workers (``intra_workers == 0``, the default) the kernel-pool
        configuration is never touched, so schedules stay byte-identical
        to the pre-parallel service. With ``policy.cost_shares``, the
        dispatched batch's share is sized from its predicted seconds and
        deadline slack instead of the even split. Returns the share
        applied (0 when the policy grants none).
        """
        if self.policy.cost_shares and inflight is not None:
            share = self._cost_worker_share(
                inflight, concurrent_sessions, clock
            )
        else:
            share = self.policy.worker_share(concurrent_sessions)
        if self.policy.intra_workers > 0:
            kernel_pool.configure_kernel_workers(share)
        return share

    def _streaming_unit_cap(self) -> Optional[float]:
        """Largest batch the ``--max-ram`` streaming budget can hold in
        dense kernel state, or ``None`` when no budget is configured.

        Batches over the cap are split across admissions instead of
        allocating ``units × num_vertices`` state past the budget (the
        mapped-scratch spill in :func:`repro.tasks.base.alloc_state_matrix`
        would save them from an OOM kill, but at mapped-I/O cost the
        admission estimate should avoid up front).
        """
        budget = streaming_budget_bytes()
        if budget is None:
            return None
        per_unit = self.graph.num_vertices * STREAMING_STATE_BYTES_PER_VERTEX
        if per_unit <= 0:
            return None
        return max(1.0, float(int(budget / per_unit)))

    def _quota_feasible(
        self, kind: str, queue: List[_Pending], clock: float
    ) -> bool:
        """Whether any queued ``kind`` request in the head scan prefix
        has tenant-quota headroom for at least one unit. Only called
        when tenant quotas are configured."""
        policy = self.policy
        for pending in sorted(
            queue, key=lambda p: policy.selection_key(p.request, clock)
        ):
            if pending.request.kind != kind:
                break
            allowed = self.admission.tenant_admissible_units(
                kind, pending.request.tenant
            )
            if allowed >= 1.0:
                return True
        return False

    # ------------------------------------------------------------------
    # Result cache (content-keyed, single-flight)
    # ------------------------------------------------------------------
    def _result_key(self, request: TaskRequest) -> Tuple[object, ...]:
        """Content key of a request's response: engine, graph
        fingerprint, kind, units and task params — everything the
        canonical payload is a function of. Tenant and arrival time are
        deliberately absent: identical queries share one entry."""
        kind = request.kind
        params = self.task_params.get(kind, {})
        return (
            "result",
            self.engines[kind].name,
            self.graph.fingerprint,
            kind,
            float(request.units),
            repr(sorted(params.items())),
        )

    def _result_payload(self, request: TaskRequest) -> bytes:
        """Hermetic response bytes for a request: the ``pack_job``
        payload of a one-batch canonical run keyed only by the content
        key (seed derived from it), so every request with the same key
        yields byte-identical bytes. The run executes on a fresh
        session via :meth:`SimulatedEngine.run_canonical` and is
        memoised in the artifact cache by ``run_job``; it never touches
        the serving sessions, the admission state, or the service
        clock."""
        key = self._result_key(request)
        digest = hashlib.blake2b(repr(key).encode(), digest_size=8)
        seed = int.from_bytes(digest.digest(), "big") % (2**63)
        kind = request.kind
        task = self._task_factory(kind)(float(request.units))
        job = self.engines[kind].run_canonical(task, seed=seed)
        return bytes(pack_job(job)["payload"])

    def _finish_result(
        self,
        pending: _Pending,
        clock: float,
        metrics: ServiceMetrics,
    ) -> None:
        """Complete a leader request in the result cache: store its
        payload, fan the same bytes out to every coalesced joiner, and
        record the joiners' latencies (they finish with the leader)."""
        cache = self.result_cache
        if cache is None:
            return
        request = pending.request
        key = self._result_key(request)
        payload = self._result_payload(request)
        store = True
        if self.policy.cache_min_seconds is not None:
            # Cost-aware admission: only retain payloads whose
            # predicted recompute time meets the threshold — cheap
            # results are recomputed on demand instead of occupying
            # cache bytes. Joiners are fanned out either way.
            calibrator = self.calibrators.get(request.kind)
            predicted = (
                calibrator.predict_seconds(float(request.units))
                if calibrator is not None
                else None
            )
            if (
                predicted is not None
                and predicted < self.policy.cache_min_seconds
            ):
                store = False
                self._cache_skips += 1
        joiners = cache.complete(
            key, payload, clock, tenant=request.tenant, store=store
        )
        self.responses[request.task_id] = payload
        start = pending.started_seconds
        if start is None:
            start = clock
        for joiner in joiners:
            self.responses[joiner.task_id] = payload
            latency = TaskLatency(
                task_id=joiner.task_id,
                kind=joiner.kind,
                units=joiner.units,
                arrival_seconds=joiner.arrival_seconds,
                start_seconds=max(joiner.arrival_seconds, start),
                finish_seconds=clock,
                priority=joiner.priority,
                deadline_seconds=joiner.deadline_seconds,
                tenant=joiner.tenant,
                served_by="coalesced",
            )
            if latency.missed_deadline:
                metrics.deadline_misses += 1
            metrics.latencies.append(latency)

    def _flush(
        self,
        metrics: ServiceMetrics,
        suspended: Optional[Dict[str, _InFlight]] = None,
    ) -> float:
        """Backpressure: ship all residual results to their callers.

        Every session's residual memory is released and priced like the
        offline runner's final aggregation (the results cross the same
        network paths); the admission budget resets. Returns the
        simulated seconds the flush cost.

        Suspended batches are untouched — their checkpointed state
        stays pinned in admission and their rounds keep pricing the
        residual snapshot taken at formation (byte-identity with the
        uninterrupted run) — but their abort restore point drops to
        zero, since the pre-flush residual no longer exists.
        """
        cost = 0.0
        for session in self.sessions.values():
            freed = session.flush_residual()
            if freed > 0:
                cost += session.engine._aggregation_seconds(
                    session.task, freed
                )
        self.admission.release_all()
        if suspended:
            for inflight in suspended.values():
                inflight.residual_restore = 0.0
        metrics.flushes += 1
        metrics.flush_seconds += cost
        return cost

    # ------------------------------------------------------------------
    # Queue admission, shedding, and preemption helpers
    # ------------------------------------------------------------------
    def _retry_after_hint(self, queue: List[_Pending]) -> float:
        """Deterministic ``Retry-After`` estimate for a shed request:
        the queued backlog times the observed seconds-per-unit."""
        backlog = sum(p.remaining for p in queue)
        if self._completed_units > 0:
            per_unit = self._completed_seconds / self._completed_units
        else:
            per_unit = 1.0
        return max(
            self.policy.retry_after_floor_seconds, backlog * per_unit
        )

    def _drop(
        self,
        request: TaskRequest,
        reason: str,
        now: float,
        queue: List[_Pending],
        metrics: ServiceMetrics,
    ) -> None:
        """Record one shed request."""
        metrics.dropped_requests += 1
        if reason == "queue-full":
            metrics.drops_queue_full += 1
        elif reason == "watermark":
            metrics.drops_watermark += 1
        elif reason == "expired":
            metrics.drops_expired += 1
        metrics.drop_log.append(
            {
                "task_id": request.task_id,
                "kind": request.kind,
                "units": request.units,
                "priority": request.priority,
                "tenant": request.tenant,
                "reason": reason,
                "clock_seconds": now,
                "retry_after_seconds": self._retry_after_hint(queue),
            }
        )
        cache = self.result_cache
        if cache is not None:
            key = self._leaders.pop(request.task_id, None)
            if key is not None and cache.inflight(key):
                # A dropped leader takes its coalesced joiners with it:
                # nothing will execute their shared key any more.
                for joiner in cache.abandon(key):
                    self._drop(joiner, reason, now, queue, metrics)

    def _enqueue(
        self,
        request: TaskRequest,
        queue: List[_Pending],
        metrics: ServiceMetrics,
        now: float,
    ) -> None:
        """Queue one arrival, shedding deterministically at the
        watermark and the queue-depth bound."""
        policy = self.policy
        if (
            policy.shed_watermark is not None
            and policy.priority_classes > 1
            and policy.static_class(request) >= policy.lowest_class
        ):
            used = (
                self.admission.residual_bytes()
                + self.admission.pinned_bytes()
            )
            if used > policy.shed_watermark * self.admission.budget:
                self._drop(request, "watermark", now, queue, metrics)
                return
        cache = self.result_cache
        if cache is not None:
            key = self._result_key(request)
            hit = cache.lookup(key, now, tenant=request.tenant)
            if hit is not None:
                # Served from memory: the exact payload bytes a cold
                # execution produced, at zero simulated cost.
                self.responses[request.task_id] = hit
                latency = TaskLatency(
                    task_id=request.task_id,
                    kind=request.kind,
                    units=request.units,
                    arrival_seconds=request.arrival_seconds,
                    start_seconds=now,
                    finish_seconds=now,
                    priority=request.priority,
                    deadline_seconds=request.deadline_seconds,
                    tenant=request.tenant,
                    served_by="cache-hit",
                )
                if latency.missed_deadline:
                    metrics.deadline_misses += 1
                metrics.latencies.append(latency)
                return
            if not cache.leader(key):
                # Single-flight: an identical request is already
                # queued or running; join it instead of queueing.
                cache.enlist(key, request)
                return
            self._leaders[request.task_id] = key
        queue.append(_Pending(request, remaining=request.units))
        if policy.max_queue is not None and len(queue) > policy.max_queue:
            # Evict the least urgent *untouched* request — lowest
            # static class first, then the youngest arrival (LIFO
            # within the class, so earlier arrivals keep their place).
            candidates = [
                p
                for p in queue
                if p.inflight == 0 and p.remaining >= p.request.units
            ]
            if not candidates:
                return  # everything is partially executed; keep it
            victim = max(
                candidates,
                key=lambda p: (
                    policy.static_class(p.request),
                    p.request.arrival_seconds,
                    p.request.task_id,
                ),
            )
            queue.remove(victim)
            self._drop(victim.request, "queue-full", now, queue, metrics)

    def _admit_arrivals(
        self,
        arrivals: Deque[TaskRequest],
        queue: List[_Pending],
        metrics: ServiceMetrics,
        now: float,
    ) -> None:
        while arrivals and arrivals[0].arrival_seconds <= now:
            self._enqueue(arrivals.popleft(), queue, metrics, now)

    def _drop_expired(
        self,
        queue: List[_Pending],
        metrics: ServiceMetrics,
        now: float,
    ) -> None:
        """Shed queued requests whose deadline passed before any of
        their units started (``policy.drop_expired``)."""
        for pending in list(queue):
            deadline = pending.request.deadline_at
            if (
                deadline is not None
                and now > deadline
                and pending.inflight == 0
                and pending.remaining >= pending.request.units
            ):
                queue.remove(pending)
                self._drop(pending.request, "expired", now, queue, metrics)

    def _preempt_callback(
        self,
        inflight: _InFlight,
        segment_clock: float,
        arrivals: Deque[TaskRequest],
        queue: List[_Pending],
        metrics: ServiceMetrics,
    ):
        """Build the barrier callback for one batch segment, or
        ``None`` when this batch can never be preempted.

        The callback runs at every superstep barrier: it advances the
        virtual clock by the batch's accrued seconds, admits arrivals
        up to that instant, and asks for suspension when a strictly
        more urgent *cross-kind* request justifies it. Same-kind
        waiters never preempt — kernels share the session RNG stream
        (BPPR draws per round), so two in-flight batches of one kind
        would change results.
        """
        policy = self.policy
        if not policy.preempt or policy.priority_classes <= 1:
            return None
        if inflight.priority <= 0:
            return None  # already the most urgent lane
        if inflight.suspend_count >= policy.max_suspends_per_batch:
            return None
        kind = inflight.kind
        batch_class = inflight.priority
        segment_start = segment_clock
        seconds_before = inflight.charged_seconds
        rounds_before = (
            inflight.checkpoint.rounds_done if inflight.checkpoint else 0
        )

        def should_suspend(batch) -> bool:
            now = segment_start + (batch.seconds - seconds_before)
            self._admit_arrivals(arrivals, queue, metrics, now)
            if (
                policy.preempt_after_rounds is not None
                and len(batch.rounds) - rounds_before
                < policy.preempt_after_rounds
            ):
                return False
            for pending in queue:
                request = pending.request
                if request.kind == kind or pending.inflight > 0:
                    continue
                if policy.effective_class(request, now) >= batch_class:
                    continue
                if policy.preempt_after_rounds is not None:
                    return True
                if policy.preempt_rule == "eager":
                    return True
                deadline = request.deadline_at
                if (
                    deadline is not None
                    and deadline - now <= policy.preempt_margin_seconds
                ):
                    return True
            return False

        return should_suspend

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[TaskRequest],
        *,
        arrival_rate: float = 0.0,
        duration_rounds: int = 0,
    ) -> ServiceMetrics:
        """Drive the service over ``requests`` until the queue drains.

        ``arrival_rate`` / ``duration_rounds`` are metadata stamped on
        the returned :class:`ServiceMetrics` (the stream itself is
        whatever ``requests`` holds — pre-queueing everything at time
        zero gives the degenerate offline schedule).
        """
        policy = self.policy
        machines = self.engine.cluster.num_machines
        metrics = ServiceMetrics(
            engine=self.engine.name,
            cluster=self.engine.cluster.name,
            arrival_rate=float(arrival_rate),
            duration_rounds=int(duration_rounds),
            seed=self.seed if isinstance(self.seed, int) else None,
        )
        arrivals: Deque[TaskRequest] = deque(
            sorted(requests, key=lambda r: (r.arrival_seconds, r.task_id))
        )
        queue: List[_Pending] = []
        #: batches suspended at a barrier, by kind (at most one per
        #: kind — kernels share the session RNG stream).
        suspended: Dict[str, _InFlight] = {}
        formed = 0
        clock = 0.0
        failures = 0
        resplit_cap: Optional[float] = None

        while arrivals or queue or suspended:
            self._admit_arrivals(arrivals, queue, metrics, clock)
            if policy.drop_expired:
                self._drop_expired(queue, metrics, clock)
            resume_kind: Optional[str] = None
            if queue:
                head = min(
                    queue,
                    key=lambda p: policy.selection_key(p.request, clock),
                )
                kind = head.request.kind
                if kind in suspended:
                    # The lane's kind has a frozen batch: it must
                    # finish before a new same-kind batch may start.
                    resume_kind = kind
            elif suspended:
                resume_kind = min(
                    suspended, key=lambda k: suspended[k].order
                )
                kind = resume_kind
            else:
                if not arrivals:
                    # The tail of the stream was shed (watermark or
                    # expiry) without ever joining the queue.
                    break
                # Idle: jump the clock to the next arrival.
                clock = max(clock, arrivals[0].arrival_seconds)
                continue

            if resume_kind is None:
                admissible = self.admission.admissible_units(kind)
                feasible = admissible >= 1.0
                if feasible and self.admission.tenant_quotas is not None:
                    feasible = self._quota_feasible(kind, queue, clock)
                if not feasible:
                    # Backpressure: residual memory ate the budget (or
                    # every candidate tenant's quota). Flush results,
                    # reset the planners, try again.
                    clock += self._flush(metrics, suspended)
                    admissible = self.admission.admissible_units(kind)
                    feasible = admissible >= 1.0
                    if feasible and self.admission.tenant_quotas is not None:
                        feasible = self._quota_feasible(kind, queue, clock)
                    if not feasible:
                        if suspended:
                            # Checkpointed state holds the remaining
                            # budget (and any tenant shares) pinned:
                            # finish a frozen batch to release it
                            # instead of giving up.
                            resume_kind = min(
                                suspended,
                                key=lambda k: suspended[k].order,
                            )
                            kind = resume_kind
                        elif admissible < 1.0:
                            raise SchedulingError(
                                f"memory budget below the {kind} model's "
                                "constant terms; no admissible batch even "
                                "after flushing all residual memory"
                            )
                        else:
                            raise SchedulingError(
                                f"no tenant quota admits a single {kind} "
                                "unit even after flushing all residual "
                                "memory"
                            )

            session = self._session(kind)
            if resume_kind is None:
                if resplit_cap is not None:
                    admissible = min(admissible, resplit_cap)
                stream_cap = self._streaming_unit_cap()
                if stream_cap is not None:
                    admissible = min(admissible, stream_cap)

                # Form the largest admissible batch of this kind, in
                # priority order. Requests are divisible into unit
                # tasks, so the head may be partially scheduled; a
                # request finishes when the batch holding its last
                # unit completes. With one priority class the scan
                # order is exactly the legacy FIFO queue order.
                # Quota-blocked tenants are skipped, not barriers:
                # later same-kind requests from other tenants still
                # fill the batch.
                batch_units = 0.0
                parts: List[Tuple[_Pending, float]] = []
                tenant_units: Dict[str, float] = {}
                quotas_on = self.admission.tenant_quotas is not None
                for pending in sorted(
                    queue,
                    key=lambda p: policy.selection_key(p.request, clock),
                ):
                    if pending.request.kind != kind:
                        break
                    take = min(pending.remaining, admissible - batch_units)
                    take = float(int(take))
                    if take < 1.0:
                        break
                    if quotas_on:
                        tenant = pending.request.tenant
                        allowed = self.admission.tenant_admissible_units(
                            kind, tenant
                        ) - tenant_units.get(tenant, 0.0)
                        take = min(take, max(allowed, 0.0))
                        if take < 1.0:
                            continue
                        tenant_units[tenant] = (
                            tenant_units.get(tenant, 0.0) + take
                        )
                    parts.append((pending, take))
                    batch_units += take
                    if batch_units >= admissible:
                        break
                batch_units = float(int(batch_units))
                projected = self.admission.projected_bytes(kind, batch_units)
                inflight = _InFlight(
                    kind=kind,
                    parts=parts,
                    batch_units=batch_units,
                    admissible=admissible,
                    projected=projected,
                    residual_log=session.residual_bytes,
                    residual_restore=session.residual_bytes,
                    start_clock=clock,
                    priority=policy.effective_class(head.request, clock),
                    order=formed,
                    tenant_units=tenant_units,
                )
                formed += 1
                callback = self._preempt_callback(
                    inflight, clock, arrivals, queue, metrics
                )
                share = self._apply_worker_share(
                    1 + len(suspended), inflight=inflight, clock=clock
                )
                result = session.run_batch(
                    inflight.batch_units, should_suspend=callback
                )
            else:
                inflight = suspended.pop(resume_kind)
                self.admission.unpin(inflight.pin_tag)
                metrics.resumes += 1
                callback = self._preempt_callback(
                    inflight, clock, arrivals, queue, metrics
                )
                share = self._apply_worker_share(
                    1 + len(suspended), inflight=inflight, clock=clock
                )
                result = session.resume(should_suspend=callback)

            if isinstance(result, BatchCheckpoint):
                # Suspended at a barrier: charge this segment's rounds
                # plus the suspension checkpoint to the clock, pin the
                # frozen state in admission, and go serve the urgent
                # lane. No batch_log entry yet — the batch is not done.
                checkpoint = result
                batch = checkpoint.batch
                segment = max(0.0, batch.seconds - inflight.charged_seconds)
                suspend_cost = (
                    checkpoint.suspend_resume_seconds
                    - inflight.charged_suspend_seconds
                )
                clock += segment + suspend_cost
                inflight.charged_seconds = batch.seconds
                inflight.charged_suspend_seconds = (
                    checkpoint.suspend_resume_seconds
                )
                inflight.checkpoint = checkpoint
                inflight.suspend_count = checkpoint.suspends
                for pending, take in inflight.parts:
                    pending.inflight = take
                pinned = checkpoint.state_bytes() / machines
                shares: Optional[Dict[str, float]] = None
                if (
                    self.admission.tenant_quotas is not None
                    and inflight.batch_units > 0
                ):
                    shares = {
                        tenant: pinned * take / inflight.batch_units
                        for tenant, take in inflight.tenant_units.items()
                    }
                self.admission.pin(inflight.pin_tag, pinned, tenants=shares)
                suspended[kind] = inflight
                metrics.preemptions += 1
                metrics.preempt_seconds += suspend_cost
                continue

            batch = result
            checkpoint = inflight.checkpoint
            suspend_cost = 0.0
            if checkpoint is not None:
                suspend_cost = (
                    checkpoint.suspend_resume_seconds
                    - inflight.charged_suspend_seconds
                )
                metrics.preempt_seconds += suspend_cost
            for pending, take in inflight.parts:
                pending.inflight = 0.0
            batch_units = inflight.batch_units
            start_clock = inflight.start_clock

            if batch.overloaded:
                # The memory model under-predicted: abort the batch
                # (partial results discarded, units stay queued) and
                # retry under a re-split cap.
                failures += 1
                batch.aborted = True
                batch.abort_seconds = self.recovery.abort_overhead_seconds
                session.residual_bytes = inflight.residual_restore
                clock += (
                    max(0.0, batch.seconds - inflight.charged_seconds)
                    + suspend_cost
                )
                metrics.resplits += 1
                resplit_cap = max(
                    1.0, float(int(batch_units / self.recovery.split_factor))
                )
                if failures > self.recovery.max_retries:
                    raise RecoveryError(
                        f"{kind} batch of {batch_units:g} units kept "
                        f"overloading after {failures} attempts",
                        history=[dict(b) for b in metrics.batch_log],
                    )
            else:
                self.admission.admit(
                    kind,
                    batch_units,
                    tenant_units=inflight.tenant_units or None,
                )
                if self.policy.calibrate:
                    # The session just told this batch's observation
                    # back; if the calibrator bumped or refitted, swap
                    # the refreshed model into the kind's planner so
                    # the *next* admission re-prices against it
                    # (``_check_kind`` recomputes budgets per call).
                    calibrator = self.calibrators.get(kind)
                    if (
                        calibrator is not None
                        and calibrator.version
                        != self._model_versions.get(kind)
                    ):
                        self.admission.planners[kind].model = (
                            calibrator.model
                        )
                        self._model_versions[kind] = calibrator.version
                clock += (
                    max(0.0, batch.seconds - inflight.charged_seconds)
                    + suspend_cost
                )
                failures = 0
                resplit_cap = None
                self._completed_units += batch_units
                self._completed_seconds += batch.seconds
                for pending, take in inflight.parts:
                    if pending.started_seconds is None:
                        pending.started_seconds = start_clock
                    pending.remaining -= take
                    if pending.remaining <= 0:
                        latency = TaskLatency(
                            task_id=pending.request.task_id,
                            kind=kind,
                            units=pending.request.units,
                            arrival_seconds=(
                                pending.request.arrival_seconds
                            ),
                            start_seconds=pending.started_seconds,
                            finish_seconds=clock,
                            priority=pending.request.priority,
                            deadline_seconds=(
                                pending.request.deadline_seconds
                            ),
                            tenant=pending.request.tenant,
                        )
                        if latency.missed_deadline:
                            metrics.deadline_misses += 1
                        metrics.latencies.append(latency)
                        if self.result_cache is not None:
                            self._leaders.pop(
                                pending.request.task_id, None
                            )
                            self._finish_result(pending, clock, metrics)
                queue[:] = [p for p in queue if p.remaining > 0]

            entry = {
                "index": len(metrics.batch_log),
                "kind": kind,
                "engine": session.engine.name,
                "workload": batch.workload,
                "admissible_units": inflight.admissible,
                "projected_bytes": inflight.projected,
                "budget_bytes": self.admission.budget,
                "start_seconds": start_clock,
                "finish_seconds": clock,
                "seconds": batch.seconds,
                "rounds": batch.num_rounds,
                "peak_memory_bytes": batch.peak_memory_bytes,
                "residual_before_bytes": inflight.residual_log,
                "residual_after_bytes": session.residual_bytes,
                "overloaded": batch.overloaded,
                "aborted": batch.aborted,
                "priority": inflight.priority,
                "preemptions": inflight.suspend_count,
                "preempt_seconds": (
                    checkpoint.suspend_resume_seconds
                    if checkpoint is not None
                    else 0.0
                ),
            }
            if self.policy.intra_workers > 0:
                # Share applied to the batch's final segment; omitted
                # entirely when the policy grants no workers so the
                # legacy batch-log shape is byte-identical.
                entry["intra_workers"] = share
            if self.admission.tenant_quotas is not None:
                entry["tenants"] = dict(inflight.tenant_units)
            if self.record_rounds:
                entry["round_trace"] = [
                    {
                        "round": r.round_index,
                        "seconds": r.seconds,
                        "network_messages": r.network_messages,
                        "local_messages": r.local_messages,
                        "peak_memory_bytes": r.peak_memory_bytes,
                    }
                    for r in batch.rounds
                ]
            metrics.batch_log.append(entry)
            self.executed_batches.append((kind, batch))

        metrics.elapsed_seconds = clock
        if self.result_cache is not None:
            summary = self.result_cache.stats.to_dict()
            summary["cached_entries"] = len(self.result_cache)
            summary["cached_bytes"] = self.result_cache.total_bytes
            metrics.result_cache = summary
            if self.policy.tenant_cache_quotas is not None:
                metrics.tenant_cache = self.result_cache.tenant_summary()
        if self.policy.calibrate:
            metrics.calibration = self.calibration_summary()
        return metrics

    def calibration_summary(self) -> Dict[str, object]:
        """The ``"calibration"`` section: the ask-tell trajectory across
        every kind's calibrator (counter sums, mean fit RMSE before the
        first tell and after the last refit, per-kind breakdown)."""
        counters = (
            "training_runs",
            "tells",
            "refits",
            "drift_events",
            "envelope_bumps",
        )
        summary: Dict[str, object] = {name: 0 for name in counters}
        summary["probe_seconds_saved"] = 0.0
        kinds: Dict[str, Dict[str, object]] = {}
        before: List[float] = []
        after: List[float] = []
        warm = bool(self.calibrators)
        for kind in sorted(self.calibrators):
            stats = self.calibrators[kind].stats
            kinds[kind] = stats.to_dict()
            for name in counters:
                summary[name] += getattr(stats, name)
            summary["probe_seconds_saved"] += stats.probe_seconds_saved
            before.append(stats.rmse_before)
            after.append(stats.rmse_after)
            warm = warm and stats.warm_start
        summary["warm_start"] = warm
        summary["rmse_before"] = (
            sum(before) / len(before) if before else 0.0
        )
        summary["rmse_after"] = sum(after) / len(after) if after else 0.0
        summary["cache_skips"] = self._cache_skips
        summary["kinds"] = kinds
        return summary


def run_degenerate(
    engine: SimulatedEngine,
    task_factory: TaskFactory,
    workload: float,
    *,
    seed: SeedLike = None,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    model: Optional[MemoryCostModel] = None,
) -> Tuple[List[float], JobMetrics]:
    """The legacy offline runner expressed as a degenerate schedule.

    All units are pre-queued, the planner makes a single pass (the
    offline Equation-5 iteration), and the schedule executes on one
    engine session — exactly the code path
    :meth:`SimulatedEngine.run_job` drives, so the returned metrics are
    byte-identical to today's runner. Returns ``(schedule, job)``.
    """
    fitted = model or train_memory_models(
        engine, task_factory, workload, seed=seed
    )
    schedule = plan_batches(
        fitted,
        workload,
        engine.cluster.scaled_machine,
        overload_fraction=overload_fraction,
    )
    job = engine.run_job(task_factory(workload), schedule, seed=seed)
    return schedule, job
