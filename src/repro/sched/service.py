"""The queue-driven scheduler loop (``vcrepro serve``).

The service owns one persistent :class:`~repro.engines.base.EngineSession`
per task kind (graph load, partitions, mirror plans and the scratch
arena survive across batches) and an
:class:`~repro.sched.admission.AdmissionController` over the fitted
memory models. The loop is event-driven on a simulated clock:

1. requests whose arrival time has passed join the FIFO queue;
2. the queue head's kind defines the next batch; admission control
   sizes it (largest admissible batch first — the paper's front-loaded
   insight falls out automatically, because residual memory accumulates
   and the admissible size shrinks);
3. the batch executes on the kind's session and the clock advances by
   its simulated seconds;
4. when admission cannot fit even one unit, the accumulated residual
   memory is flushed to the callers (backpressure) and the budget
   resets;
5. a batch that overloads anyway (model error) is aborted and its
   units retried under a re-split cap, reusing the
   :class:`~repro.faults.recovery.OverloadRecovery` policy.

A degenerate schedule — every unit pre-queued at time zero, a single
kind, a single planner pass — reproduces the legacy offline runner
byte-identically (see :func:`run_degenerate` and the determinism
suite).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engines.base import EngineSession, SimulatedEngine
from repro.errors import RecoveryError, SchedulingError
from repro.faults.recovery import OverloadRecovery
from repro.graph.csr import Graph
from repro.rng import SeedLike
from repro.sched.admission import AdmissionController
from repro.sched.arrivals import DEFAULT_KINDS, TaskRequest
from repro.sim.metrics import JobMetrics, ServiceMetrics, TaskLatency
from repro.tasks.base import make_task
from repro.tuning.memory_model import MemoryCostModel
from repro.tuning.planner import DEFAULT_OVERLOAD_FRACTION, plan_batches
from repro.tuning.trainer import TaskFactory, train_memory_models

#: Default training reference workload for the per-kind memory models —
#: large enough for the probe ladder, small enough to train quickly.
DEFAULT_REFERENCE_WORKLOAD = 512.0


@dataclass
class _Pending:
    """A queued request and how many of its units remain unscheduled."""

    request: TaskRequest
    remaining: float
    #: clock time the batch containing the request's first unit started.
    started_seconds: Optional[float] = None


class SchedulerService:
    """Long-lived, admission-controlled scheduler over one engine.

    Parameters
    ----------
    engine:
        the simulated engine (bound to a cluster) that executes batches.
    graph:
        the dataset every request queries.
    kinds:
        task kinds the service accepts; a memory model is trained and a
        persistent session opened for each.
    seed:
        master seed for session RNG streams (same label derivation as
        the offline runner, so degenerate schedules match it exactly).
    overload_fraction:
        the paper's ``p``: fraction of machine memory admission may use.
    recovery:
        abort/re-split policy for batches that overload despite
        admission (memory-model error).
    reference_workload:
        training workload handed to the Section-5 probe ladder.
    record_rounds:
        include the per-round trace of every batch in the batch log
        (the determinism suite compares these streams byte for byte).
    """

    def __init__(
        self,
        engine: SimulatedEngine,
        graph: Graph,
        kinds: Sequence[str] = DEFAULT_KINDS,
        *,
        seed: SeedLike = None,
        overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
        recovery: Optional[OverloadRecovery] = None,
        reference_workload: float = DEFAULT_REFERENCE_WORKLOAD,
        record_rounds: bool = False,
        task_params: Optional[Mapping[str, Mapping[str, object]]] = None,
        fault_plan=None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if not kinds:
            raise SchedulingError("at least one task kind is required")
        #: optional fault plan injected into every kind's session
        #: (rounds counted per session, as in the offline runner).
        self.fault_plan = fault_plan
        #: optional Pregel-style checkpoint cadence for the sessions.
        self.checkpoint_every = checkpoint_every
        self.engine = engine
        self.graph = graph
        self.kinds = tuple(kinds)
        self.seed = seed
        self.overload_fraction = float(overload_fraction)
        self.recovery = recovery or OverloadRecovery()
        self.reference_workload = float(reference_workload)
        self.record_rounds = record_rounds
        #: per-kind task keyword params (e.g. MSSP/BKHS sampling caps).
        self.task_params: Dict[str, Dict[str, object]] = {
            kind: dict(params)
            for kind, params in (task_params or {}).items()
        }
        models: Dict[str, MemoryCostModel] = {
            kind: train_memory_models(
                engine,
                self._task_factory(kind),
                self.reference_workload,
                seed=seed,
            )
            for kind in self.kinds
        }
        self.admission = AdmissionController(
            models, engine.cluster.scaled_machine, self.overload_fraction
        )
        #: persistent per-kind sessions (opened lazily on first batch).
        self.sessions: Dict[str, EngineSession] = {}
        #: executed batches as ``(kind, BatchMetrics)`` — raw objects for
        #: the byte-identity tests; :class:`ServiceMetrics` carries the
        #: JSON-friendly summaries.
        self.executed_batches: List[Tuple[str, object]] = []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _task_factory(self, kind: str) -> TaskFactory:
        """Workload → TaskSpec factory for ``kind`` on the service graph."""
        params = self.task_params.get(kind, {})
        return lambda workload: make_task(
            kind, self.graph, workload, **params
        )

    def _session(self, kind: str) -> EngineSession:
        """The kind's persistent session, opened on first use.

        Sessions run with the job cutoff disabled: the service clock is
        unbounded, and overload is handled by abort/re-split instead of
        the offline 6000 s stamp.
        """
        if kind not in self.sessions:
            task = self._task_factory(kind)(self.reference_workload)
            self.sessions[kind] = self.engine.open_session(
                task,
                self.seed,
                fault_plan=self.fault_plan,
                checkpoint_every=self.checkpoint_every,
                cutoff_seconds=None,
            )
        return self.sessions[kind]

    def _flush(self, metrics: ServiceMetrics) -> float:
        """Backpressure: ship all residual results to their callers.

        Every session's residual memory is released and priced like the
        offline runner's final aggregation (the results cross the same
        network paths); the admission budget resets. Returns the
        simulated seconds the flush cost.
        """
        cost = 0.0
        for session in self.sessions.values():
            freed = session.flush_residual()
            if freed > 0:
                cost += self.engine._aggregation_seconds(session.task, freed)
        self.admission.release_all()
        metrics.flushes += 1
        metrics.flush_seconds += cost
        return cost

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------
    def run(
        self,
        requests: Sequence[TaskRequest],
        *,
        arrival_rate: float = 0.0,
        duration_rounds: int = 0,
    ) -> ServiceMetrics:
        """Drive the service over ``requests`` until the queue drains.

        ``arrival_rate`` / ``duration_rounds`` are metadata stamped on
        the returned :class:`ServiceMetrics` (the stream itself is
        whatever ``requests`` holds — pre-queueing everything at time
        zero gives the degenerate offline schedule).
        """
        metrics = ServiceMetrics(
            engine=self.engine.name,
            cluster=self.engine.cluster.name,
            arrival_rate=float(arrival_rate),
            duration_rounds=int(duration_rounds),
            seed=self.seed if isinstance(self.seed, int) else None,
        )
        arrivals: Deque[TaskRequest] = deque(
            sorted(requests, key=lambda r: (r.arrival_seconds, r.task_id))
        )
        queue: Deque[_Pending] = deque()
        clock = 0.0
        failures = 0
        resplit_cap: Optional[float] = None

        while arrivals or queue:
            while arrivals and arrivals[0].arrival_seconds <= clock:
                request = arrivals.popleft()
                queue.append(_Pending(request, remaining=request.units))
            if not queue:
                # Idle: jump the clock to the next arrival.
                clock = max(clock, arrivals[0].arrival_seconds)
                continue

            kind = queue[0].request.kind
            admissible = self.admission.admissible_units(kind)
            if admissible < 1.0:
                # Backpressure: residual memory ate the budget. Flush
                # results, reset the planners, try again.
                clock += self._flush(metrics)
                admissible = self.admission.admissible_units(kind)
                if admissible < 1.0:
                    raise SchedulingError(
                        f"memory budget below the {kind} model's constant "
                        "terms; no admissible batch even after flushing "
                        "all residual memory"
                    )
            if resplit_cap is not None:
                admissible = min(admissible, resplit_cap)

            # Form the largest admissible FIFO batch of this kind.
            # Requests are divisible into unit tasks, so the head may be
            # partially scheduled; a request finishes when the batch
            # holding its last unit completes.
            batch_units = 0.0
            parts: List[Tuple[_Pending, float]] = []
            for pending in queue:
                if pending.request.kind != kind:
                    break
                take = min(pending.remaining, admissible - batch_units)
                take = float(int(take))
                if take < 1.0:
                    break
                parts.append((pending, take))
                batch_units += take
                if batch_units >= admissible:
                    break
            batch_units = float(int(batch_units))
            projected = self.admission.projected_bytes(kind, batch_units)

            session = self._session(kind)
            residual_before = session.residual_bytes
            start_clock = clock
            batch = session.run_batch(batch_units)

            if batch.overloaded:
                # The memory model under-predicted: abort the batch
                # (partial results discarded, units stay queued) and
                # retry under a re-split cap.
                failures += 1
                batch.aborted = True
                batch.abort_seconds = self.recovery.abort_overhead_seconds
                session.residual_bytes = residual_before
                clock += batch.seconds
                metrics.resplits += 1
                resplit_cap = max(
                    1.0, float(int(batch_units / self.recovery.split_factor))
                )
                if failures > self.recovery.max_retries:
                    raise RecoveryError(
                        f"{kind} batch of {batch_units:g} units kept "
                        f"overloading after {failures} attempts",
                        history=[dict(b) for b in metrics.batch_log],
                    )
            else:
                self.admission.admit(kind, batch_units)
                clock += batch.seconds
                failures = 0
                resplit_cap = None
                for pending, take in parts:
                    if pending.started_seconds is None:
                        pending.started_seconds = start_clock
                    pending.remaining -= take
                    if pending.remaining <= 0:
                        metrics.latencies.append(
                            TaskLatency(
                                task_id=pending.request.task_id,
                                kind=kind,
                                units=pending.request.units,
                                arrival_seconds=(
                                    pending.request.arrival_seconds
                                ),
                                start_seconds=pending.started_seconds,
                                finish_seconds=clock,
                            )
                        )
                while queue and queue[0].remaining <= 0:
                    queue.popleft()

            entry = {
                "index": len(metrics.batch_log),
                "kind": kind,
                "workload": batch.workload,
                "admissible_units": admissible,
                "projected_bytes": projected,
                "budget_bytes": self.admission.budget,
                "start_seconds": start_clock,
                "finish_seconds": clock,
                "seconds": batch.seconds,
                "rounds": batch.num_rounds,
                "peak_memory_bytes": batch.peak_memory_bytes,
                "residual_before_bytes": residual_before,
                "residual_after_bytes": session.residual_bytes,
                "overloaded": batch.overloaded,
                "aborted": batch.aborted,
            }
            if self.record_rounds:
                entry["round_trace"] = [
                    {
                        "round": r.round_index,
                        "seconds": r.seconds,
                        "network_messages": r.network_messages,
                        "local_messages": r.local_messages,
                        "peak_memory_bytes": r.peak_memory_bytes,
                    }
                    for r in batch.rounds
                ]
            metrics.batch_log.append(entry)
            self.executed_batches.append((kind, batch))

        metrics.elapsed_seconds = clock
        return metrics


def run_degenerate(
    engine: SimulatedEngine,
    task_factory: TaskFactory,
    workload: float,
    *,
    seed: SeedLike = None,
    overload_fraction: float = DEFAULT_OVERLOAD_FRACTION,
    model: Optional[MemoryCostModel] = None,
) -> Tuple[List[float], JobMetrics]:
    """The legacy offline runner expressed as a degenerate schedule.

    All units are pre-queued, the planner makes a single pass (the
    offline Equation-5 iteration), and the schedule executes on one
    engine session — exactly the code path
    :meth:`SimulatedEngine.run_job` drives, so the returned metrics are
    byte-identical to today's runner. Returns ``(schedule, job)``.
    """
    fitted = model or train_memory_models(
        engine, task_factory, workload, seed=seed
    )
    schedule = plan_batches(
        fitted,
        workload,
        engine.cluster.scaled_machine,
        overload_fraction=overload_fraction,
    )
    job = engine.run_job(task_factory(workload), schedule, seed=seed)
    return schedule, job
