"""Seeded arrival streams for the online scheduler.

Requests arrive on a discrete virtual clock: each of ``duration``
ticks is one simulated second, and the number of requests landing on a
tick is Poisson-distributed with mean ``rate``. Kinds and unit counts
are drawn from the same seeded generator, so a (seed, rate, duration)
triple always produces the identical stream — the property the
differential determinism suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.rng import SeedLike, make_rng

#: Task kinds the service accepts by default (the paper's three
#: multi-processing workloads).
DEFAULT_KINDS: Tuple[str, ...] = ("bppr", "mssp", "bkhs")

#: Default unit-count range for one request (inclusive bounds). Kept
#: well under typical workloads so single requests are admissible.
DEFAULT_UNITS_RANGE: Tuple[int, int] = (8, 128)

#: Simulated seconds per arrival tick.
TICK_SECONDS = 1.0

#: Priority class assigned when the stream does not draw one.
#: Class 0 is the most urgent; larger numbers are more patient.
DEFAULT_PRIORITY = 1

#: Tenant assigned when the stream does not draw one — the anonymous
#: single-tenant stream every pre-tenant release served.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TaskRequest:
    """One unit-task request on the arrival stream.

    ``units`` follows the paper's workload units (walks for BPPR,
    sources for MSSP/BKHS). ``arrival_seconds`` is the virtual clock
    time the request became visible to the scheduler.

    ``priority`` is the request's lane (0 = most urgent); the service
    only consults it when its :class:`~repro.sched.policy.ServicePolicy`
    enables more than one class. ``deadline_seconds`` is a *relative*
    latency target: the request should finish by
    ``arrival_seconds + deadline_seconds``, and the preemption policy
    may suspend a running batch to protect it.

    ``tenant`` names the account the request bills against; the
    multi-tenant service enforces per-tenant memory quotas and
    priority mappings on it and reports per-tenant latency
    percentiles. The default tenant reproduces the anonymous
    single-tenant stream.
    """

    task_id: int
    kind: str
    units: float
    arrival_seconds: float
    priority: int = DEFAULT_PRIORITY
    deadline_seconds: Optional[float] = None
    tenant: str = DEFAULT_TENANT

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute virtual-clock deadline, or ``None``."""
        if self.deadline_seconds is None:
            return None
        return self.arrival_seconds + self.deadline_seconds


def generate_arrivals(
    rate: float,
    duration: int,
    seed: SeedLike = None,
    kinds: Sequence[str] = DEFAULT_KINDS,
    units_range: Tuple[int, int] = DEFAULT_UNITS_RANGE,
    priority_classes: Optional[int] = None,
    deadlines: Optional[Mapping[int, float]] = None,
    tenants: Optional[Sequence[str]] = None,
) -> List[TaskRequest]:
    """Generate the seeded arrival stream.

    Parameters
    ----------
    rate:
        mean requests per tick (Poisson).
    duration:
        number of ticks in the stream.
    seed:
        master seed; the stream derives its own substream under the
        label ``"sched/arrivals"`` so it never perturbs engine RNG.
    kinds:
        task kinds to draw from, uniformly.
    units_range:
        inclusive (low, high) bounds of one request's unit count.
    priority_classes:
        when set (> 1), draw each request's priority class uniformly
        from ``[0, priority_classes)``. ``None`` assigns every request
        :data:`DEFAULT_PRIORITY` *without consuming RNG draws*, so
        legacy streams stay byte-identical.
    deadlines:
        optional mapping of priority class → relative deadline
        seconds, attached to matching requests (no RNG consumed).
    tenants:
        when given with two or more names, draw each request's tenant
        uniformly from them. A single name is assigned directly and
        ``None`` assigns :data:`DEFAULT_TENANT` — both *without
        consuming RNG draws*, so single-tenant streams stay
        byte-identical to pre-tenant releases.

    Returns requests sorted by arrival time (ties keep draw order).
    """
    if rate <= 0:
        raise SchedulingError("arrival rate must be positive")
    if duration <= 0:
        raise SchedulingError("duration must be a positive tick count")
    if not kinds:
        raise SchedulingError("at least one task kind is required")
    low, high = units_range
    if low < 1 or high < low:
        raise SchedulingError(
            f"units_range must satisfy 1 <= low <= high, got {units_range}"
        )
    if priority_classes is not None and priority_classes < 1:
        raise SchedulingError("priority_classes must be >= 1")
    tenant_names: Optional[Tuple[str, ...]] = None
    if tenants is not None:
        tenant_names = tuple(str(t) for t in tenants)
        if not tenant_names or any(not t for t in tenant_names):
            raise SchedulingError(
                "tenants must be a non-empty sequence of non-empty names"
            )
    rng = make_rng(seed, label="sched/arrivals")
    requests: List[TaskRequest] = []
    task_id = 0
    for tick in range(int(duration)):
        count = int(rng.poisson(rate))
        for _ in range(count):
            kind = str(kinds[int(rng.integers(0, len(kinds)))])
            units = float(int(rng.integers(low, high, endpoint=True)))
            if priority_classes is not None and priority_classes > 1:
                priority = int(rng.integers(0, priority_classes))
            else:
                priority = DEFAULT_PRIORITY
            deadline = None
            if deadlines is not None:
                deadline = deadlines.get(priority)
            if tenant_names is None:
                tenant = DEFAULT_TENANT
            elif len(tenant_names) == 1:
                tenant = tenant_names[0]
            else:
                tenant = tenant_names[int(rng.integers(0, len(tenant_names)))]
            requests.append(
                TaskRequest(
                    task_id=task_id,
                    kind=kind,
                    units=units,
                    arrival_seconds=tick * TICK_SECONDS,
                    priority=priority,
                    deadline_seconds=deadline,
                    tenant=tenant,
                )
            )
            task_id += 1
    return requests
