"""Seeded arrival streams for the online scheduler.

Requests arrive on a discrete virtual clock: each of ``duration``
ticks is one simulated second, and the number of requests landing on a
tick is Poisson-distributed with mean ``rate``. Kinds and unit counts
are drawn from the same seeded generator, so a (seed, rate, duration)
triple always produces the identical stream — the property the
differential determinism suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SchedulingError
from repro.rng import SeedLike, make_rng

#: Task kinds the service accepts by default (the paper's three
#: multi-processing workloads).
DEFAULT_KINDS: Tuple[str, ...] = ("bppr", "mssp", "bkhs")

#: Default unit-count range for one request (inclusive bounds). Kept
#: well under typical workloads so single requests are admissible.
DEFAULT_UNITS_RANGE: Tuple[int, int] = (8, 128)

#: Simulated seconds per arrival tick.
TICK_SECONDS = 1.0


@dataclass(frozen=True)
class TaskRequest:
    """One unit-task request on the arrival stream.

    ``units`` follows the paper's workload units (walks for BPPR,
    sources for MSSP/BKHS). ``arrival_seconds`` is the virtual clock
    time the request became visible to the scheduler.
    """

    task_id: int
    kind: str
    units: float
    arrival_seconds: float


def generate_arrivals(
    rate: float,
    duration: int,
    seed: SeedLike = None,
    kinds: Sequence[str] = DEFAULT_KINDS,
    units_range: Tuple[int, int] = DEFAULT_UNITS_RANGE,
) -> List[TaskRequest]:
    """Generate the seeded arrival stream.

    Parameters
    ----------
    rate:
        mean requests per tick (Poisson).
    duration:
        number of ticks in the stream.
    seed:
        master seed; the stream derives its own substream under the
        label ``"sched/arrivals"`` so it never perturbs engine RNG.
    kinds:
        task kinds to draw from, uniformly.
    units_range:
        inclusive (low, high) bounds of one request's unit count.

    Returns requests sorted by arrival time (ties keep draw order).
    """
    if rate <= 0:
        raise SchedulingError("arrival rate must be positive")
    if duration <= 0:
        raise SchedulingError("duration must be a positive tick count")
    if not kinds:
        raise SchedulingError("at least one task kind is required")
    low, high = units_range
    if low < 1 or high < low:
        raise SchedulingError(
            f"units_range must satisfy 1 <= low <= high, got {units_range}"
        )
    rng = make_rng(seed, label="sched/arrivals")
    requests: List[TaskRequest] = []
    task_id = 0
    for tick in range(int(duration)):
        count = int(rng.poisson(rate))
        for _ in range(count):
            kind = str(kinds[int(rng.integers(0, len(kinds)))])
            units = float(int(rng.integers(low, high, endpoint=True)))
            requests.append(
                TaskRequest(
                    task_id=task_id,
                    kind=kind,
                    units=units,
                    arrival_seconds=tick * TICK_SECONDS,
                )
            )
            task_id += 1
    return requests
