"""Per-machine memory footprint accounting.

The paper's memory-bound analysis (Section 4.3, Table 2) decomposes
run-time memory into: graph state, message buffers (send + receive), task
state for the in-flight batch, and *residual memory* — intermediate
results of earlier batches kept for final aggregation (Section 4.5/4.7).
:class:`MemoryModel` composes those terms from engine-specific byte
constants; the engines feed it per-round message counts and it returns a
:class:`MemoryBreakdown` whose ``total`` drives the overload policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryBreakdown:
    """Byte-level decomposition of one machine's peak memory in a round."""

    graph_bytes: float
    buffer_bytes: float
    task_state_bytes: float
    residual_bytes: float

    @property
    def total(self) -> float:
        return (
            self.graph_bytes
            + self.buffer_bytes
            + self.task_state_bytes
            + self.residual_bytes
        )

    def as_dict(self) -> dict:
        """Component name -> bytes mapping (plus the total)."""
        return {
            "graph": self.graph_bytes,
            "buffers": self.buffer_bytes,
            "task_state": self.task_state_bytes,
            "residual": self.residual_bytes,
            "total": self.total,
        }


@dataclass(frozen=True)
class MemoryModel:
    """Engine-flavoured memory constants.

    Attributes
    ----------
    vertex_state_bytes:
        bytes per resident vertex (id, value, halted flag, adjacency
        pointers).
    arc_bytes:
        bytes per resident arc (neighbour id + optional weight).
    message_bytes:
        serialized size of one in-flight message.
    buffer_overhead:
        multiplier on message buffers for serialization slack and the
        double-buffering of send + receive queues.
    object_overhead:
        language-level object overhead: ~1.0 for C++ engines, ~2.2 for
        JVM engines before Facebook's byte-array serialization work
        (Section 2.2 notes Giraph "optimized memory consumption by
        serializing the edges and messages"; we model stock Giraph).
    """

    vertex_state_bytes: float = 64.0
    arc_bytes: float = 8.0
    message_bytes: float = 16.0
    buffer_overhead: float = 2.0
    object_overhead: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "vertex_state_bytes",
            "arc_bytes",
            "message_bytes",
            "buffer_overhead",
            "object_overhead",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def graph_bytes(self, vertices: float, arcs: float) -> float:
        """Resident graph state for one machine's partition."""
        return (
            vertices * self.vertex_state_bytes + arcs * self.arc_bytes
        ) * self.object_overhead

    def buffer_bytes(
        self,
        messages_in: float,
        messages_out: float,
        message_bytes: float = None,
    ) -> float:
        """Send + receive buffer footprint for one round.

        ``message_bytes`` defaults to the engine constant but is usually
        overridden with the task's actual wire-message size.
        """
        size = self.message_bytes if message_bytes is None else message_bytes
        return (
            (messages_in + messages_out)
            * size
            * self.buffer_overhead
            * self.object_overhead
        )

    def breakdown(
        self,
        vertices: float,
        arcs: float,
        messages_in: float,
        messages_out: float,
        task_state_bytes: float = 0.0,
        residual_bytes: float = 0.0,
        message_bytes: float = None,
    ) -> MemoryBreakdown:
        """Compose a full per-machine breakdown for one round."""
        return MemoryBreakdown(
            graph_bytes=self.graph_bytes(vertices, arcs),
            buffer_bytes=self.buffer_bytes(
                messages_in, messages_out, message_bytes
            ),
            task_state_bytes=task_state_bytes * self.object_overhead,
            residual_bytes=residual_bytes,
        )
