"""Simulation core: metrics, memory accounting, cost model, monetary model.

The engines execute the paper's algorithms for real and count what
happened (messages, bytes, compute work, memory peaks); this subpackage
turns those counts into simulated seconds and credits:

* :mod:`repro.sim.metrics` — per-round / per-batch / per-job records.
* :mod:`repro.sim.memory` — memory footprint accounting.
* :mod:`repro.sim.overload` — usable-memory / thrash / overload policy.
* :mod:`repro.sim.cost` — the round-time composition model.
* :mod:`repro.sim.monetary` — Docker-32 credit costs (Figure 7).
"""

from repro.sim.cost import CostModel, RoundCost, RoundLoad
from repro.sim.memory import MemoryBreakdown, MemoryModel
from repro.sim.metrics import BatchMetrics, JobMetrics, RoundMetrics
from repro.sim.monetary import MonetaryModel, credit_cost
from repro.sim.overload import MemoryState, OverloadPolicy, classify_memory

__all__ = [
    "RoundMetrics",
    "BatchMetrics",
    "JobMetrics",
    "MemoryModel",
    "MemoryBreakdown",
    "MemoryState",
    "OverloadPolicy",
    "classify_memory",
    "CostModel",
    "RoundLoad",
    "RoundCost",
    "MonetaryModel",
    "credit_cost",
]
