"""Memory-pressure policy: fine / thrashing / overloaded.

Section 4.3: "excessive messages cause the memory consumption to exceed
the machine's physical memory capacity, thereby either triggering the
virtual memory mechanism which leads to high latency, or causing a system
failure due to overload". Three regimes follow:

* ``OK`` — peak ≤ usable memory (capacity − OS reserve): no penalty.
* ``THRASHING`` — usable < peak ≤ overload limit: the round's time is
  multiplied by a superlinear paging penalty.
* ``OVERLOADED`` — peak > overload limit: the run is marked overload and
  reported at the paper's 6000 s cutoff.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.cluster.machine import MachineSpec
from repro.errors import ConfigurationError


class MemoryState(enum.Enum):
    """Memory-pressure regime of a machine during a round."""

    OK = "ok"
    THRASHING = "thrashing"
    OVERLOADED = "overloaded"


@dataclass(frozen=True)
class OverloadPolicy:
    """Tunable thrash-penalty shape.

    Paging slowdowns are catastrophic, not linear: once the working set
    exceeds usable memory, each additional page of overshoot multiplies
    the fault rate. The multiplier applied to a thrashing round is::

        exp(steepness * overshoot / headroom)

    where ``overshoot`` is how far the peak exceeds usable memory and
    ``headroom`` is the distance from usable memory to the overload
    limit. Near the usable boundary the penalty is gentle (Table 2's
    (4096, 4 machines, 1 batch) runs at 15.0 GB of a 14 GB usable budget
    and slows only ~25 %); near the hard limit it reaches hundreds,
    which lands the run past the 6000 s cutoff — exactly how the paper's
    borderline Full-Parallelism cells behave.
    """

    steepness: float = 6.5

    def __post_init__(self) -> None:
        if self.steepness < 0:
            raise ConfigurationError("steepness must be non-negative")

    def thrash_multiplier(self, peak_bytes: float, machine: MachineSpec) -> float:
        """Latency multiplier for the given per-machine memory peak."""
        usable = machine.usable_memory_bytes
        if peak_bytes <= usable:
            return 1.0
        limit = machine.overload_limit_bytes
        headroom = max(limit - usable, 1e-9)
        overshoot = min(peak_bytes, limit) - usable
        return float(math.exp(self.steepness * overshoot / headroom))


def classify_memory(
    peak_bytes: float, machine: MachineSpec
) -> MemoryState:
    """Classify a per-machine memory peak into one of the three regimes."""
    if peak_bytes <= machine.usable_memory_bytes:
        return MemoryState.OK
    if peak_bytes <= machine.overload_limit_bytes:
        return MemoryState.THRASHING
    return MemoryState.OVERLOADED
