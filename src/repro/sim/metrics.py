"""Metric records produced by engine runs.

Three levels mirror the paper's reporting granularity:

* :class:`RoundMetrics` — one communication round (Figure 6's per-round
  message counts, Table 3's per-round disk numbers).
* :class:`BatchMetrics` — one batch of the multi-processing job.
* :class:`JobMetrics` — the whole job: total time, peak memory, overuse
  durations, overload flag (the paper's 6000 s cutoff), and everything
  the experiment tables print.
"""

from __future__ import annotations

import copy
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.perf.cache import ArraySerializer
from repro.units import (
    OVERLOAD_CUTOFF_SECONDS,
    format_bytes,
    format_count,
    format_seconds,
)


@dataclass
class RoundMetrics:
    """Accounting for a single synchronous communication round."""

    round_index: int
    #: messages that crossed the network this round.
    network_messages: float
    #: messages delivered between co-located vertices (no network).
    local_messages: float
    #: network bytes moved by the bottleneck machine.
    bottleneck_bytes: float
    #: compute work units executed by the bottleneck machine.
    compute_ops: float
    #: peak memory on the most loaded machine during this round.
    peak_memory_bytes: float
    #: bytes spilled to disk (out-of-core engines only).
    spilled_bytes: float = 0.0
    #: simulated seconds, total and broken down.
    seconds: float = 0.0
    compute_seconds: float = 0.0
    network_seconds: float = 0.0
    disk_seconds: float = 0.0
    barrier_seconds: float = 0.0
    thrash_multiplier: float = 1.0
    disk_utilization: float = 0.0
    io_queue_length: float = 0.0
    network_saturated: bool = False

    @property
    def total_messages(self) -> float:
        return self.network_messages + self.local_messages


@dataclass
class BatchMetrics:
    """Accounting for one batch (a sequence of rounds)."""

    batch_index: int
    workload: float
    rounds: List[RoundMetrics] = field(default_factory=list)
    overloaded: bool = False
    overload_reason: Optional[str] = None
    #: residual memory carried *into* this batch from earlier batches.
    residual_memory_bytes: float = 0.0
    #: residual memory this batch leaves behind for later batches.
    residual_memory_after_bytes: float = 0.0
    #: fixed batch startup cost (engine-dependent).
    startup_seconds: float = 0.0
    #: checkpoints written during this batch (Pregel's every-k-rounds
    #: model) and the simulated time spent writing them.
    checkpoints_written: int = 0
    checkpoint_seconds: float = 0.0
    #: injected machine crashes survived by rollback-replay, the rounds
    #: replayed to recover, and the time lost doing so (replayed round
    #: time plus checkpoint restore).
    crashes: int = 0
    rounds_replayed: int = 0
    replay_seconds: float = 0.0
    #: non-crash fault events applied (stragglers, message loss,
    #: disk-full stalls) and the extra time they cost.
    fault_events: int = 0
    fault_seconds: float = 0.0
    #: overload recovery aborted this batch: it still counts as
    #: overloaded, but its time is the real elapsed time until the abort
    #: (plus abort overhead) instead of the 6000 s cutoff stamp.
    aborted: bool = False
    abort_seconds: float = 0.0
    #: human-readable log of the faults applied during this batch.
    fault_log: List[str] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def seconds(self) -> float:
        if self.overloaded and not self.aborted:
            return OVERLOAD_CUTOFF_SECONDS
        elapsed = (
            self.startup_seconds
            + sum(r.seconds for r in self.rounds)
            + self.checkpoint_seconds
            + self.replay_seconds
            + self.fault_seconds
        )
        if self.aborted:
            # A supervised abort fires no later than the cutoff — the
            # batch never thrashes to completion, so cap the charge.
            elapsed = min(elapsed, OVERLOAD_CUTOFF_SECONDS)
        return elapsed + self.abort_seconds

    @property
    def network_messages(self) -> float:
        return sum(r.network_messages for r in self.rounds)

    @property
    def total_messages(self) -> float:
        return sum(r.total_messages for r in self.rounds)

    @property
    def peak_memory_bytes(self) -> float:
        if not self.rounds:
            return self.residual_memory_bytes
        return max(r.peak_memory_bytes for r in self.rounds)

    @property
    def messages_per_round(self) -> float:
        """Average per-round message count — the paper's "congestion"."""
        if not self.rounds:
            return 0.0
        return self.total_messages / len(self.rounds)

    @property
    def spilled_bytes(self) -> float:
        return sum(r.spilled_bytes for r in self.rounds)


@dataclass
class JobMetrics:
    """Accounting for a whole multi-processing job (all batches)."""

    engine: str
    task: str
    dataset: str
    cluster: str
    num_machines: int
    total_workload: float
    batch_sizes: List[float] = field(default_factory=list)
    batches: List[BatchMetrics] = field(default_factory=list)
    aggregation_seconds: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    #: overload-recovery attempts (one record per aborted-and-re-split
    #: schedule), recorded by the batching executor's closed loop.
    retry_history: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates the experiment tables print
    # ------------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return len(self.batch_sizes)

    @property
    def overloaded(self) -> bool:
        """Terminal overload: a batch overloaded and was *not* recovered.

        Batches aborted by overload recovery still record their failure
        (``overloaded=True, aborted=True``) but do not mark the job
        overloaded — the re-split batches completed the workload.
        """
        return any(b.overloaded and not b.aborted for b in self.batches)

    @property
    def seconds(self) -> float:
        """Total simulated running time (cutoff when overloaded)."""
        if self.overloaded:
            return OVERLOAD_CUTOFF_SECONDS
        return sum(b.seconds for b in self.batches) + self.aggregation_seconds

    @property
    def num_rounds(self) -> int:
        return sum(b.num_rounds for b in self.batches)

    @property
    def network_messages(self) -> float:
        return sum(b.network_messages for b in self.batches)

    @property
    def total_messages(self) -> float:
        return sum(b.total_messages for b in self.batches)

    @property
    def messages_per_round(self) -> float:
        rounds = self.num_rounds
        if rounds == 0:
            return 0.0
        return self.total_messages / rounds

    @property
    def peak_memory_bytes(self) -> float:
        if not self.batches:
            return 0.0
        return max(b.peak_memory_bytes for b in self.batches)

    # -- fault-tolerance aggregates ------------------------------------
    @property
    def checkpoints_written(self) -> int:
        return sum(b.checkpoints_written for b in self.batches)

    @property
    def checkpoint_seconds(self) -> float:
        return sum(b.checkpoint_seconds for b in self.batches)

    @property
    def crashes(self) -> int:
        return sum(b.crashes for b in self.batches)

    @property
    def rounds_replayed(self) -> int:
        return sum(b.rounds_replayed for b in self.batches)

    @property
    def replay_seconds(self) -> float:
        return sum(b.replay_seconds for b in self.batches)

    @property
    def fault_events(self) -> int:
        return sum(b.fault_events for b in self.batches)

    @property
    def fault_seconds(self) -> float:
        return sum(b.fault_seconds for b in self.batches)

    @property
    def time_lost_seconds(self) -> float:
        """Simulated time lost to faults: replay plus slowdown extras."""
        return self.replay_seconds + self.fault_seconds

    @property
    def overload_retries(self) -> int:
        """Overload-recovery attempts recorded by the executor."""
        return len(self.retry_history)

    @property
    def aborted_batches(self) -> int:
        return sum(1 for b in self.batches if b.aborted)

    @property
    def network_overuse_seconds(self) -> float:
        return self.extras.get("network_overuse_seconds", 0.0)

    @property
    def io_overuse_seconds(self) -> float:
        return self.extras.get("io_overuse_seconds", 0.0)

    @property
    def max_disk_utilization(self) -> float:
        if not self.batches:
            return 0.0
        return max(
            (r.disk_utilization for b in self.batches for r in b.rounds),
            default=0.0,
        )

    @property
    def mean_io_queue_length(self) -> float:
        lengths = [
            r.io_queue_length
            for b in self.batches
            for r in b.rounds
            if r.spilled_bytes > 0
        ]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def time_breakdown(self) -> Dict[str, float]:
        """Seconds attributed to each cost component across all rounds.

        The thrash multiplier inflates compute/network/overhead time;
        the difference is reported under ``"thrash"`` so the components
        sum to the (uncapped) total.
        """
        parts = {
            "compute": 0.0,
            "network": 0.0,
            "disk": 0.0,
            "barrier": 0.0,
            "startup": 0.0,
            "thrash": 0.0,
            "checkpoint": 0.0,
            "replay": 0.0,
            "faults": 0.0,
        }
        for batch in self.batches:
            parts["startup"] += batch.startup_seconds
            parts["checkpoint"] += batch.checkpoint_seconds
            parts["replay"] += batch.replay_seconds
            parts["faults"] += batch.fault_seconds + batch.abort_seconds
            for r in batch.rounds:
                parts["compute"] += r.compute_seconds
                parts["network"] += r.network_seconds
                parts["disk"] += r.disk_seconds
                parts["barrier"] += r.barrier_seconds
                worked = r.seconds - r.barrier_seconds - r.disk_seconds
                parts["thrash"] += max(
                    0.0,
                    worked
                    - (r.seconds - r.barrier_seconds - r.disk_seconds)
                    / max(r.thrash_multiplier, 1.0),
                )
        parts["other"] = max(
            0.0,
            sum(b.seconds for b in self.batches)
            + self.aggregation_seconds
            - sum(parts.values()),
        )
        return parts

    def time_label(self) -> str:
        """The time string as the paper prints it ("Overload" at cutoff)."""
        if self.overloaded:
            return "Overload"
        return format_seconds(self.seconds)

    def to_dict(self, include_rounds: bool = False) -> Dict:
        """JSON-serialisable dump of the job's metrics.

        Batch summaries are always included; pass
        ``include_rounds=True`` for the full per-round trace.
        """
        payload = {
            "engine": self.engine,
            "task": self.task,
            "dataset": self.dataset,
            "cluster": self.cluster,
            "num_machines": self.num_machines,
            "total_workload": self.total_workload,
            "batch_sizes": list(self.batch_sizes),
            "seconds": self.seconds,
            "overloaded": self.overloaded,
            "num_rounds": self.num_rounds,
            "network_messages": self.network_messages,
            "total_messages": self.total_messages,
            "messages_per_round": self.messages_per_round,
            "peak_memory_bytes": self.peak_memory_bytes,
            "network_overuse_seconds": self.network_overuse_seconds,
            "io_overuse_seconds": self.io_overuse_seconds,
            "max_disk_utilization": self.max_disk_utilization,
            "aggregation_seconds": self.aggregation_seconds,
            "time_breakdown": self.time_breakdown(),
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_seconds": self.checkpoint_seconds,
            "crashes": self.crashes,
            "rounds_replayed": self.rounds_replayed,
            "replay_seconds": self.replay_seconds,
            "fault_events": self.fault_events,
            "fault_seconds": self.fault_seconds,
            "overload_retries": self.overload_retries,
            "retry_history": [dict(r) for r in self.retry_history],
            "batches": [
                {
                    "index": b.batch_index,
                    "workload": b.workload,
                    "rounds": b.num_rounds,
                    "seconds": b.seconds,
                    "overloaded": b.overloaded,
                    "overload_reason": b.overload_reason,
                    "aborted": b.aborted,
                    "peak_memory_bytes": b.peak_memory_bytes,
                    "residual_memory_after_bytes": (
                        b.residual_memory_after_bytes
                    ),
                    "checkpoints_written": b.checkpoints_written,
                    "crashes": b.crashes,
                    "rounds_replayed": b.rounds_replayed,
                    "replay_seconds": b.replay_seconds,
                    "fault_log": list(b.fault_log),
                }
                for b in self.batches
            ],
        }
        if include_rounds:
            for batch_payload, batch in zip(payload["batches"], self.batches):
                batch_payload["round_trace"] = [
                    {
                        "round": r.round_index,
                        "seconds": r.seconds,
                        "network_messages": r.network_messages,
                        "local_messages": r.local_messages,
                        "peak_memory_bytes": r.peak_memory_bytes,
                        "spilled_bytes": r.spilled_bytes,
                        "disk_utilization": r.disk_utilization,
                        "thrash_multiplier": r.thrash_multiplier,
                    }
                    for r in batch.rounds
                ]
        return payload

    def summary(self) -> str:
        """One-line summary for logs and example scripts."""
        return (
            f"{self.engine}/{self.task} on {self.dataset}@{self.cluster} "
            f"W={self.total_workload:g} b={self.num_batches}: "
            f"{self.time_label()}, rounds={self.num_rounds}, "
            f"msgs/round={format_count(self.messages_per_round)}, "
            f"peak_mem={format_bytes(self.peak_memory_bytes)}"
        )


# ----------------------------------------------------------------------
# Fast copies and artifact-cache persistence
# ----------------------------------------------------------------------
def clone_job(job: JobMetrics) -> JobMetrics:
    """Independent copy of ``job``.

    Every metric field is a scalar, so three levels of shallow copies
    suffice — orders of magnitude cheaper than :func:`copy.deepcopy`,
    which recurses into each of the tens of thousands of per-round
    records an experiment sweep keeps in the run cache.
    """
    clone = copy.copy(job)
    clone.batch_sizes = list(job.batch_sizes)
    clone.extras = dict(job.extras)
    clone.retry_history = [dict(r) for r in job.retry_history]
    clone.batches = []
    for batch in job.batches:
        batch_clone = copy.copy(batch)
        batch_clone.rounds = [copy.copy(r) for r in batch.rounds]
        batch_clone.fault_log = list(batch.fault_log)
        clone.batches.append(batch_clone)
    return clone


def _json_safe(obj):
    """Unwrap stray numpy scalars so metric payloads JSON-serialise."""
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON-serialisable: {type(obj)!r}")


#: Field-name tuples captured once so :func:`pack_job` can build its
#: JSON payload with plain attribute reads. ``dataclasses.asdict`` costs
#: ~100x more on the same data: it recurses through every per-round
#: record and deep-copies each scalar before ``json.dumps`` immediately
#: renders the copy anyway.
_ROUND_FIELDS = tuple(f.name for f in dataclasses.fields(RoundMetrics))
_BATCH_FIELDS = tuple(f.name for f in dataclasses.fields(BatchMetrics))
_JOB_FIELDS = tuple(f.name for f in dataclasses.fields(JobMetrics))


def pack_job(job: JobMetrics) -> Dict[str, np.ndarray]:
    """Pack a job into a byte array for the on-disk artifact cache.

    The payload is built with shallow attribute reads in dataclass
    field order — byte-identical JSON to the ``dataclasses.asdict``
    rendering it replaces, without the recursive deep copies.
    """

    def round_row(r: RoundMetrics) -> dict:
        return {name: getattr(r, name) for name in _ROUND_FIELDS}

    def batch_row(b: BatchMetrics) -> dict:
        return {
            name: (
                [round_row(r) for r in b.rounds]
                if name == "rounds"
                else getattr(b, name)
            )
            for name in _BATCH_FIELDS
        }

    payload = {
        name: (
            [batch_row(b) for b in job.batches]
            if name == "batches"
            else getattr(job, name)
        )
        for name in _JOB_FIELDS
    }
    data = json.dumps(payload, default=_json_safe).encode("utf-8")
    return {"payload": np.frombuffer(data, dtype=np.uint8)}


def unpack_job(arrays: Dict[str, np.ndarray]) -> JobMetrics:
    """Rebuild a job packed by :func:`pack_job`.

    JSON renders floats with ``repr`` (shortest round-trip form), so
    the rebuilt metrics are bit-identical to the originals.
    """
    payload = json.loads(bytes(arrays["payload"]).decode("utf-8"))
    batches = []
    for batch_payload in payload.pop("batches"):
        rounds = [
            RoundMetrics(**r) for r in batch_payload.pop("rounds")
        ]
        batches.append(BatchMetrics(rounds=rounds, **batch_payload))
    return JobMetrics(batches=batches, **payload)


#: Serializer persisting whole engine runs in the shared artifact cache.
JOB_SERIALIZER = ArraySerializer(pack=pack_job, unpack=unpack_job)


# ----------------------------------------------------------------------
# Online-scheduling accounting (repro.sched)
# ----------------------------------------------------------------------
def percentile(values: List[float], q: float) -> float:
    """Deterministic ``q``-th percentile (linear interpolation).

    Pure-python so the value is bit-stable across numpy versions —
    latency tables feed the differential determinism suite, which
    compares them byte for byte.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass
class TaskLatency:
    """Latency record for one unit-task request in the online scheduler.

    All times are on the service's simulated clock. Queueing delay runs
    from arrival until the batch containing the request's *first* unit
    starts; execution runs from that start until the batch containing
    its *last* unit finishes (a request may span several batches when
    admission control splits it).
    """

    task_id: int
    kind: str
    units: float
    arrival_seconds: float
    start_seconds: float
    finish_seconds: float
    #: priority lane the request arrived on (0 = most urgent).
    priority: int = 1
    #: relative latency target, when the request carried one.
    deadline_seconds: Optional[float] = None
    #: tenant the request billed against.
    tenant: str = "default"
    #: how the request was satisfied: "executed" (ran in batches),
    #: "cache-hit" (served from the result cache), or "coalesced"
    #: (joined an in-flight duplicate's execution).
    served_by: str = "executed"

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting in the arrival queue."""
        return self.start_seconds - self.arrival_seconds

    @property
    def missed_deadline(self) -> bool:
        """Whether the request finished past its deadline."""
        if self.deadline_seconds is None:
            return False
        return self.latency_seconds > self.deadline_seconds

    @property
    def execution_seconds(self) -> float:
        """Time from first batch start to last batch finish."""
        return self.finish_seconds - self.start_seconds

    @property
    def latency_seconds(self) -> float:
        """End-to-end sojourn time (queueing + execution)."""
        return self.finish_seconds - self.arrival_seconds


@dataclass
class ServiceMetrics:
    """Accounting for one online scheduling service run.

    Collects the per-request latency records, the executed batch log
    (with admission headroom at formation time), and the backpressure /
    re-split counters the throughput experiment and ``vcrepro serve``
    report.
    """

    engine: str
    cluster: str
    arrival_rate: float = 0.0
    duration_rounds: int = 0
    seed: Optional[int] = None
    #: completed requests, in completion order.
    latencies: List[TaskLatency] = field(default_factory=list)
    #: one summary dict per executed batch (kind, workload, seconds,
    #: rounds, admission headroom, residual before/after).
    batch_log: List[Dict[str, Any]] = field(default_factory=list)
    #: residual flushes forced by backpressure and their simulated cost.
    flushes: int = 0
    flush_seconds: float = 0.0
    #: overloaded batches recovered by abort + re-split.
    resplits: int = 0
    #: simulated seconds from service start to last batch completion.
    elapsed_seconds: float = 0.0
    #: batches suspended at a superstep barrier for a more urgent lane.
    preemptions: int = 0
    #: suspended batches resumed (each eventually completes).
    resumes: int = 0
    #: simulated suspend/restore checkpoint cost paid for preemption.
    preempt_seconds: float = 0.0
    #: requests shed instead of queued (all reasons).
    dropped_requests: int = 0
    #: shed because the pending queue hit its depth bound.
    drops_queue_full: int = 0
    #: shed because residual memory crossed the shed watermark.
    drops_watermark: int = 0
    #: queued requests dropped after their deadline expired unstarted.
    drops_expired: int = 0
    #: completed requests that finished past their deadline.
    deadline_misses: int = 0
    #: one record per shed request (task_id, kind, reason, hint).
    drop_log: List[Dict[str, Any]] = field(default_factory=list)
    #: result-cache counters (hits/misses/coalesced/stores/expirations/
    #: evictions plus final cached bytes); ``None`` when the cache was
    #: off, and then absent from :meth:`to_dict` so cache-off digests
    #: keep the pre-cache shape.
    result_cache: Optional[Dict[str, Any]] = None
    #: per-tenant result-cache counters (hits/evictions/stores/bytes),
    #: set only when per-tenant cache quotas are configured; merged
    #: into :meth:`tenant_summary` records. ``None`` keeps the legacy
    #: tenant-record shape.
    tenant_cache: Optional[Dict[str, Dict[str, Any]]] = None
    #: ask-tell calibration trajectory (training runs, refits, drift
    #: events, RMSE before/after, probe seconds saved); ``None`` when
    #: calibration was off, and then absent from :meth:`to_dict` so
    #: calibration-off digests keep the pre-calibration shape.
    calibration: Optional[Dict[str, Any]] = None
    #: tasks still queued when the stream ended (drained before stop).
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def completed_tasks(self) -> int:
        """Number of requests that ran to completion."""
        return len(self.latencies)

    @property
    def completed_units(self) -> float:
        """Total unit-task workload completed."""
        return sum(t.units for t in self.latencies)

    @property
    def throughput_tasks_per_second(self) -> float:
        """Completed requests per simulated second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed_tasks / self.elapsed_seconds

    @property
    def throughput_units_per_second(self) -> float:
        """Completed unit tasks per simulated second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed_units / self.elapsed_seconds

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of end-to-end, queueing, and execution latency."""
        total = [t.latency_seconds for t in self.latencies]
        queue = [t.queue_seconds for t in self.latencies]
        execution = [t.execution_seconds for t in self.latencies]
        return {
            "p50_seconds": percentile(total, 50),
            "p95_seconds": percentile(total, 95),
            "p99_seconds": percentile(total, 99),
            "queue_p50_seconds": percentile(queue, 50),
            "queue_p95_seconds": percentile(queue, 95),
            "queue_p99_seconds": percentile(queue, 99),
            "execution_p50_seconds": percentile(execution, 50),
            "execution_p95_seconds": percentile(execution, 95),
            "execution_p99_seconds": percentile(execution, 99),
        }

    def tenant_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant latency percentiles and counters (the
        ``"tenants"`` section of ``BENCH_perf.json``), keyed by tenant
        name in sorted order."""
        tenants: Dict[str, Dict[str, Any]] = {}

        def record(tenant: str) -> Dict[str, Any]:
            return tenants.setdefault(
                tenant,
                {
                    "completed_tasks": 0,
                    "completed_units": 0.0,
                    "deadline_misses": 0,
                    "dropped_requests": 0,
                    "cache_hits": 0,
                    "coalesced_requests": 0,
                    "_latencies": [],
                },
            )

        for task in self.latencies:
            rec = record(task.tenant)
            rec["completed_tasks"] += 1
            rec["completed_units"] += task.units
            rec["_latencies"].append(task.latency_seconds)
            if task.missed_deadline:
                rec["deadline_misses"] += 1
            if task.served_by == "cache-hit":
                rec["cache_hits"] += 1
            elif task.served_by == "coalesced":
                rec["coalesced_requests"] += 1
        for drop in self.drop_log:
            record(str(drop.get("tenant", "default")))[
                "dropped_requests"
            ] += 1
        if self.tenant_cache is not None:
            # Per-tenant cache quota counters ride along only when the
            # quotas ran, keeping the legacy record shape otherwise.
            for tenant in self.tenant_cache:
                record(tenant)
        summary: Dict[str, Dict[str, Any]] = {}
        for tenant in sorted(tenants):
            rec = tenants[tenant]
            values = rec.pop("_latencies")
            rec["p50_seconds"] = percentile(values, 50)
            rec["p95_seconds"] = percentile(values, 95)
            rec["p99_seconds"] = percentile(values, 99)
            if self.tenant_cache is not None:
                cache_rec = self.tenant_cache.get(
                    tenant,
                    {
                        "cache_hits": 0,
                        "cache_evictions": 0,
                        "cache_stores": 0,
                        "cache_bytes": 0.0,
                    },
                )
                rec["cache_evictions"] = cache_rec["cache_evictions"]
                rec["cache_stores"] = cache_rec["cache_stores"]
                rec["cache_bytes"] = cache_rec["cache_bytes"]
            summary[tenant] = rec
        return summary

    def resilience_summary(self) -> Dict[str, Any]:
        """Preemption/shedding/deadline counters (the ``"resilience"``
        section of ``BENCH_perf.json``)."""
        return {
            "preemptions": self.preemptions,
            "resumes": self.resumes,
            "preempt_seconds": self.preempt_seconds,
            "dropped_requests": self.dropped_requests,
            "drops_queue_full": self.drops_queue_full,
            "drops_watermark": self.drops_watermark,
            "drops_expired": self.drops_expired,
            "deadline_misses": self.deadline_misses,
            "drops": [dict(d) for d in self.drop_log],
        }

    def to_dict(self, include_latencies: bool = False) -> Dict[str, Any]:
        """JSON-serialisable dump (stable key order for diffing).

        Batch summaries and percentile aggregates are always included;
        pass ``include_latencies=True`` for the full per-request table.
        """
        payload: Dict[str, Any] = {
            "engine": self.engine,
            "cluster": self.cluster,
            "arrival_rate": self.arrival_rate,
            "duration_rounds": self.duration_rounds,
            "seed": self.seed,
            "completed_tasks": self.completed_tasks,
            "completed_units": self.completed_units,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_tasks_per_second": self.throughput_tasks_per_second,
            "throughput_units_per_second": self.throughput_units_per_second,
            "flushes": self.flushes,
            "flush_seconds": self.flush_seconds,
            "resplits": self.resplits,
            "num_batches": len(self.batch_log),
            "latency": self.latency_percentiles(),
            "resilience": self.resilience_summary(),
            "batches": [dict(b) for b in self.batch_log],
            "extras": dict(self.extras),
        }
        if self.result_cache is not None:
            # Only present when the result cache ran, so cache-off
            # digests keep the pre-cache payload shape byte for byte.
            payload["result_cache"] = dict(self.result_cache)
        if self.calibration is not None:
            # Same contract for the ask-tell calibration trajectory.
            payload["calibration"] = dict(self.calibration)
        tenants = self.tenant_summary()
        if any(t != "default" for t in tenants):
            # Same contract for multi-tenancy: anonymous single-tenant
            # streams keep the legacy payload shape.
            payload["tenants"] = tenants
        if include_latencies:
            payload["tasks"] = [
                {
                    "task_id": t.task_id,
                    "kind": t.kind,
                    "units": t.units,
                    "priority": t.priority,
                    "tenant": t.tenant,
                    "served_by": t.served_by,
                    "deadline_seconds": t.deadline_seconds,
                    "arrival_seconds": t.arrival_seconds,
                    "start_seconds": t.start_seconds,
                    "finish_seconds": t.finish_seconds,
                    "latency_seconds": t.latency_seconds,
                }
                for t in self.latencies
            ]
        return payload

    def latency_table(self) -> str:
        """Human-readable latency/throughput table for CLI output."""
        pct = self.latency_percentiles()
        lines = [
            f"completed tasks   {self.completed_tasks}",
            f"completed units   {format_count(self.completed_units)}",
            f"elapsed           {format_seconds(self.elapsed_seconds)}",
            (
                "throughput        "
                f"{self.throughput_tasks_per_second:.4g} tasks/s "
                f"({self.throughput_units_per_second:.4g} units/s)"
            ),
            (
                "latency p50/p95/p99   "
                f"{format_seconds(pct['p50_seconds'])} / "
                f"{format_seconds(pct['p95_seconds'])} / "
                f"{format_seconds(pct['p99_seconds'])}"
            ),
            (
                "queueing p50/p95/p99  "
                f"{format_seconds(pct['queue_p50_seconds'])} / "
                f"{format_seconds(pct['queue_p95_seconds'])} / "
                f"{format_seconds(pct['queue_p99_seconds'])}"
            ),
            (
                f"batches           {len(self.batch_log)} "
                f"(flushes={self.flushes}, resplits={self.resplits})"
            ),
        ]
        if (
            self.preemptions
            or self.dropped_requests
            or self.deadline_misses
        ):
            lines.append(
                "resilience        "
                f"preemptions={self.preemptions} resumes={self.resumes} "
                f"dropped={self.dropped_requests} "
                f"deadline_misses={self.deadline_misses}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line summary for logs."""
        pct = self.latency_percentiles()
        return (
            f"{self.engine}@{self.cluster} rate={self.arrival_rate:g}: "
            f"{self.completed_tasks} tasks in "
            f"{format_seconds(self.elapsed_seconds)}, "
            f"p50={format_seconds(pct['p50_seconds'])}, "
            f"p99={format_seconds(pct['p99_seconds'])}"
        )
