"""Cloud credit-cost model (Section 4.6, Figure 7).

"In the Docker cloud, the monetary cost is positively correlated to the
running time. The cost per-unit-time is determined by collectively
considering the disk cost, memory cost, and CPU cost." Overloaded runs
are charged at the 6000 s cutoff and flagged as a *lower bound* — the
paper prints them as ``>$X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.sim.metrics import JobMetrics
from repro.units import HOUR, OVERLOAD_CUTOFF_SECONDS


@dataclass(frozen=True)
class MonetaryModel:
    """Per-machine-hour rate decomposed into CPU, memory and disk shares.

    The default split matches typical IaaS pricing for the Docker-32
    node shape (15 vCPU / 16 GB / SSD) and sums to the cluster preset's
    ``credit_rate_per_machine_hour``.
    """

    cpu_rate_per_machine_hour: float = 2.6
    memory_rate_per_machine_hour: float = 1.0
    disk_rate_per_machine_hour: float = 0.4

    def __post_init__(self) -> None:
        if min(
            self.cpu_rate_per_machine_hour,
            self.memory_rate_per_machine_hour,
            self.disk_rate_per_machine_hour,
        ) < 0:
            raise ConfigurationError("rates must be non-negative")

    @property
    def rate_per_machine_hour(self) -> float:
        return (
            self.cpu_rate_per_machine_hour
            + self.memory_rate_per_machine_hour
            + self.disk_rate_per_machine_hour
        )

    def job_cost(self, seconds: float, num_machines: int) -> float:
        """Credits for running ``num_machines`` for ``seconds``."""
        return self.rate_per_machine_hour * num_machines * seconds / HOUR


@dataclass(frozen=True)
class CreditCost:
    """A priced run; ``lower_bound`` mirrors the paper's ``>$X`` marks."""

    credits: float
    lower_bound: bool

    def label(self) -> str:
        """Dollar label as the paper prints it (``>$X`` for lower bounds)."""
        prefix = ">" if self.lower_bound else ""
        return f"{prefix}${self.credits:.0f}"


def credit_cost(
    metrics: JobMetrics,
    cluster: ClusterSpec,
    model: MonetaryModel = MonetaryModel(),
) -> CreditCost:
    """Price one job on a cloud cluster.

    Overloaded jobs are priced at the cutoff and marked as lower bounds,
    exactly as the paper treats its ``>`` entries.
    """
    seconds = (
        OVERLOAD_CUTOFF_SECONDS if metrics.overloaded else metrics.seconds
    )
    rate_model = model
    if cluster.credit_rate_per_machine_hour is not None:
        # Rescale the split to hit the preset's total rate.
        factor = (
            cluster.credit_rate_per_machine_hour / model.rate_per_machine_hour
        )
        rate_model = MonetaryModel(
            cpu_rate_per_machine_hour=model.cpu_rate_per_machine_hour * factor,
            memory_rate_per_machine_hour=model.memory_rate_per_machine_hour
            * factor,
            disk_rate_per_machine_hour=model.disk_rate_per_machine_hour
            * factor,
        )
    credits = rate_model.job_cost(seconds, metrics.num_machines)
    return CreditCost(credits=credits, lower_bound=metrics.overloaded)


def sweep_cost(
    runs: Iterable[JobMetrics],
    cluster: ClusterSpec,
    model: MonetaryModel = MonetaryModel(),
) -> CreditCost:
    """Total credits for a sweep of runs (one x-axis group in Figure 7).

    The total is a lower bound if any constituent run overloaded.
    """
    total = 0.0
    lower = False
    for metrics in runs:
        cost = credit_cost(metrics, cluster, model)
        total += cost.credits
        lower = lower or cost.lower_bound
    return CreditCost(credits=total, lower_bound=lower)
