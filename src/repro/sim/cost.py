"""The round-time composition model.

Engines execute the real algorithms, then describe each communication
round as a :class:`RoundLoad` (bottleneck-machine message counts, bytes,
compute work, memory peak, spill volume). :class:`CostModel` turns one
load into a :class:`RoundCost`:

``t = (t_compute + t_network + t_overhead) * thrash + t_disk + t_barrier``

with the network congestion knee (:mod:`repro.cluster.network`), disk
saturation (:mod:`repro.cluster.disk`), the paging thrash multiplier
(:mod:`repro.sim.overload`), and a per-round fixed overhead plus a
synchronisation barrier that grows with the machine count — the term that
makes *too many* batches slow (Table 3 rows past the optimum; "the
running time can increase because of the round-synchronization
overheads").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.disk import DiskModel, DiskSpec
from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkModel, NetworkSpec
from repro.errors import ConfigurationError
from repro.sim.overload import MemoryState, OverloadPolicy, classify_memory


@dataclass(frozen=True)
class RoundLoad:
    """What one communication round demands of the bottleneck machine."""

    #: messages crossing the network cluster-wide this round.
    network_messages: float
    #: messages delivered machine-locally this round (no network cost).
    local_messages: float
    #: network bytes in+out at the most loaded machine.
    bottleneck_bytes: float
    #: compute work units at the most loaded machine.
    compute_ops: float
    #: peak memory at the most loaded machine.
    peak_memory_bytes: float
    #: bytes streamed through the disk at the most loaded machine.
    spilled_bytes: float = 0.0
    #: average serialized message size (for queue-length reporting).
    message_bytes: float = 16.0
    #: total network bytes moved cluster-wide this round (drives the
    #: fabric-level congestion knee).
    cluster_bytes: float = 0.0


@dataclass
class RoundCost:
    """Simulated time of one round, decomposed."""

    seconds: float
    compute_seconds: float
    network_seconds: float
    disk_seconds: float
    barrier_seconds: float
    overhead_seconds: float
    thrash_multiplier: float
    memory_state: MemoryState
    disk_utilization: float = 0.0
    io_queue_length: float = 0.0
    network_saturated: bool = False

    @property
    def overloaded(self) -> bool:
        return self.memory_state is MemoryState.OVERLOADED


@dataclass
class CostModel:
    """Engine + cluster flavoured time model.

    Parameters
    ----------
    machine:
        scaled machine spec of the target cluster.
    network_spec:
        scaled network spec of the target cluster.
    disk_spec:
        scaled disk spec; only consulted when rounds spill bytes.
    num_machines:
        cluster size (drives the barrier term).
    cpu_factor:
        language/runtime multiplier on compute time (C++ 1.0, JVM ~2.4).
    barrier_base_seconds / barrier_per_machine_seconds:
        synchronisation barrier cost per round; zero for fully
        asynchronous engines.
    per_round_overhead_seconds:
        fixed per-round dispatch cost (superstep setup, RPC fan-out).
    overload_policy:
        paging penalty shape.
    memory_capped:
        out-of-core engines bound their memory use explicitly and
        therefore never thrash or overload on memory (GraphD); they pay
        disk time instead.
    """

    machine: MachineSpec
    network_spec: NetworkSpec
    disk_spec: Optional[DiskSpec] = None
    num_machines: int = 1
    cpu_factor: float = 1.0
    barrier_base_seconds: float = 0.05
    barrier_per_machine_seconds: float = 0.012
    per_round_overhead_seconds: float = 0.02
    overload_policy: OverloadPolicy = field(default_factory=OverloadPolicy)
    memory_capped: bool = False

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ConfigurationError("num_machines must be positive")
        if self.cpu_factor <= 0:
            raise ConfigurationError("cpu_factor must be positive")
        self._network = NetworkModel(self.network_spec, num_machines=self.num_machines)
        self._disk = DiskModel(self.disk_spec) if self.disk_spec else None

    # ------------------------------------------------------------------
    @property
    def network_model(self) -> NetworkModel:
        return self._network

    @property
    def disk_model(self) -> Optional[DiskModel]:
        return self._disk

    def barrier_seconds(self) -> float:
        """Per-round synchronisation barrier cost."""
        return (
            self.barrier_base_seconds
            + self.barrier_per_machine_seconds * self.num_machines
        )

    def compute_seconds(self, compute_ops: float) -> float:
        """Time for the bottleneck machine's local computation."""
        throughput = (
            self.machine.cores * self.machine.compute_ops_per_second
        ) / self.cpu_factor
        return compute_ops / throughput

    def round_cost(self, load: RoundLoad) -> RoundCost:
        """Price one round. See the module docstring for the composition."""
        compute = self.compute_seconds(load.compute_ops)
        net_usage = self._network.round_time(
            load.bottleneck_bytes, cluster_bytes=load.cluster_bytes
        )
        barrier = self.barrier_seconds()
        overhead = self.per_round_overhead_seconds

        if self.memory_capped:
            state = MemoryState.OK
            thrash = 1.0
        else:
            state = classify_memory(load.peak_memory_bytes, self.machine)
            thrash = self.overload_policy.thrash_multiplier(
                load.peak_memory_bytes, self.machine
            )

        worked = (compute + net_usage.total_seconds + overhead) * thrash

        disk_seconds = 0.0
        disk_utilization = 0.0
        io_queue = 0.0
        if self._disk is not None and load.spilled_bytes > 0:
            usage = self._disk.round_time(
                load.spilled_bytes,
                other_seconds=worked + barrier,
                message_bytes=load.message_bytes,
            )
            disk_seconds = max(0.0, usage.round_seconds - (worked + barrier))
            disk_utilization = usage.utilization
            io_queue = usage.queue_length
        elif self._disk is not None:
            self._disk.round_time(0.0, worked + barrier, load.message_bytes)

        total = worked + barrier + disk_seconds
        return RoundCost(
            seconds=total,
            compute_seconds=compute,
            network_seconds=net_usage.total_seconds,
            disk_seconds=disk_seconds,
            barrier_seconds=barrier,
            overhead_seconds=overhead,
            thrash_multiplier=thrash,
            memory_state=state,
            disk_utilization=disk_utilization,
            io_queue_length=io_queue,
            network_saturated=net_usage.saturated,
        )

    def overuse_totals(self) -> dict:
        """Network/IO overuse durations accumulated so far (Table 2/3)."""
        totals = {
            "network_overuse_seconds": self._network.overuse_seconds(),
            "io_overuse_seconds": 0.0,
        }
        if self._disk is not None:
            totals["io_overuse_seconds"] = self._disk.overuse_seconds()
        return totals

    def reset(self) -> None:
        """Clear accumulated per-round state between batches/jobs."""
        self._network.reset()
        if self._disk is not None:
            self._disk.reset()
