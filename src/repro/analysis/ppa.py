"""BPPA/PPA condition auditing (Section 2.4).

Yan et al. define a *Balanced Practical Pregel Algorithm* (BPPA) by four
conditions — per-vertex linear space, linear computation, linear
communication (O(d(v)) messages per vertex per round) and at most
logarithmic rounds — and the relaxed *PPA* by the average-vertex
versions. Section 2.4 argues multi-processing tasks rarely fit: BPPR
either needs O(log^2 n) rounds (walks one at a time) or sends
Ω(log n · d(v)) messages per vertex (walks concurrently).

:func:`audit_bppa` measures those conditions on a real kernel execution:
it wraps the router to capture per-vertex emission counts each round and
reports, per condition, the observed worst constant. The test-suite uses
it to *demonstrate the paper's claim*: PageRank audits as a BPPA while
Full-Parallelism BPPR at workload log(n) violates the communication
condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.graph.csr import Graph
from repro.graph.mirrors import build_mirror_plan
from repro.graph.partition import hash_partition
from repro.messages.routing import PointToPointRouter, RoutedMessages
from repro.rng import SeedLike, make_rng
from repro.tasks.base import TaskSpec


class _AuditingRouter(PointToPointRouter):
    """Point-to-point router that records per-vertex emissions."""

    def __init__(self, graph: Graph) -> None:
        partition = hash_partition(graph, 1)
        plan = build_mirror_plan(graph, partition)
        super().__init__(graph, plan)
        self.per_round_emissions: List[np.ndarray] = []
        self._n = graph.num_vertices

    def route(self, vertex_ids, emissions) -> RoutedMessages:
        counts = np.zeros(self._n, dtype=np.float64)
        if len(vertex_ids):
            np.add.at(counts, vertex_ids, emissions)
        self.per_round_emissions.append(counts)
        return super().route(vertex_ids, emissions)


@dataclass(frozen=True)
class BPPAAudit:
    """Measured constants for the four (B)PPA conditions.

    Each ``*_constant`` is the smallest ``c`` for which the condition
    holds on this execution; ``is_bppa(c)`` / ``is_ppa(c)`` check all
    conditions against an allowed constant.
    """

    rounds: int
    num_vertices: int
    #: worst-case per-vertex messages / degree over all rounds (BPPA
    #: linear-communication constant).
    communication_constant: float
    #: cluster-wide messages per round / total arcs (PPA average
    #: communication constant).
    average_communication_constant: float
    #: rounds / log2(n) (logarithmic-rounds constant).
    rounds_constant: float
    #: vertex with the worst communication ratio (for diagnostics).
    worst_vertex: Optional[int] = None

    def is_bppa(self, allowed_constant: float = 4.0) -> bool:
        """Every-vertex conditions within ``allowed_constant``."""
        return (
            self.communication_constant <= allowed_constant
            and self.rounds_constant <= allowed_constant
        )

    def is_ppa(self, allowed_constant: float = 4.0) -> bool:
        """Average-vertex relaxation within ``allowed_constant``."""
        return (
            self.average_communication_constant <= allowed_constant
            and self.rounds_constant <= allowed_constant
        )

    def summary(self) -> str:
        """One-line rendering of the measured constants."""
        return (
            f"rounds={self.rounds} (c_rounds={self.rounds_constant:.2f}), "
            f"per-vertex comm c={self.communication_constant:.2f}, "
            f"average comm c={self.average_communication_constant:.2f}"
        )


def audit_bppa(
    task: TaskSpec,
    batch_workload: Optional[float] = None,
    seed: SeedLike = None,
    max_rounds: int = 10_000,
) -> BPPAAudit:
    """Execute one batch of ``task`` and audit the (B)PPA conditions.

    The kernel runs on a single simulated worker with an instrumented
    router; per-vertex emission counts per round give the communication
    constants exactly.
    """
    graph = task.graph
    router = _AuditingRouter(graph)
    rng = make_rng(seed, label=f"ppa-audit/{task.name}")
    workload = float(batch_workload or task.workload)
    kernel = task.make_kernel(router, workload, rng)
    for _ in range(max_rounds):
        if kernel.step().done:
            break

    degrees = np.diff(graph.indptr).astype(np.float64)
    n = graph.num_vertices
    total_arcs = max(graph.num_arcs, 1)

    worst_ratio = 0.0
    worst_vertex: Optional[int] = None
    avg_constant = 0.0
    for counts in router.per_round_emissions:
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(degrees > 0, counts / degrees, 0.0)
        idx = int(np.argmax(ratios))
        if ratios[idx] > worst_ratio:
            worst_ratio = float(ratios[idx])
            worst_vertex = idx
        avg_constant = max(avg_constant, float(counts.sum()) / total_arcs)

    rounds = len(router.per_round_emissions)
    log_n = max(math.log2(max(n, 2)), 1.0)
    return BPPAAudit(
        rounds=rounds,
        num_vertices=n,
        communication_constant=worst_ratio,
        average_communication_constant=avg_constant,
        rounds_constant=rounds / log_n,
        worst_vertex=worst_vertex,
    )
