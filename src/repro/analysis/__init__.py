"""Analysis utilities: algorithm-class audits and tradeoff inspection.

* :mod:`repro.analysis.ppa` — audit a task execution against Yan et
  al.'s (Balanced) Practical Pregel Algorithm conditions (Section 2.4).
* :mod:`repro.analysis.tradeoff` — classify each batch-count setting's
  binding regime (memory/disk/congestion/sync) and locate the optimum,
  the programmatic form of Figure 11 and the Section 4.10 guidelines.
"""

from repro.analysis.ppa import BPPAAudit, audit_bppa
from repro.analysis.tradeoff import TradeoffCurve, classify_regime

__all__ = ["BPPAAudit", "audit_bppa", "TradeoffCurve", "classify_regime"]
