"""Round-congestion tradeoff analysis: regime classification per run.

Figure 11 frames tuning as recognising which *state* the system is in:
memory-bound (peak near/over usable memory), disk-bound (out-of-core
saturation), congested (network knee), or sync-bound (barriers and
startup dominate). :func:`classify_regime` reads one run's metrics and
names the binding constraint; :class:`TradeoffCurve` applies it across a
batch sweep and locates the optimum — the programmatic version of the
paper's practitioner guidelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.machine import MachineSpec
from repro.sim.metrics import JobMetrics

#: Peak-memory fraction of usable capacity above which a run counts as
#: memory-bound (the paper tunes towards "close to the usable capacity").
MEMORY_BOUND_FRACTION = 0.9

#: Disk demand ratio above which a run counts as disk-bound.
DISK_BOUND_UTILIZATION = 1.0

#: Share of total time in barriers/startup above which a run counts as
#: sync-bound.
SYNC_BOUND_SHARE = 0.25

#: Share of total time attributable to congestion penalties/thrash above
#: which a run counts as congested.
CONGESTED_SHARE = 0.25


def classify_regime(metrics: JobMetrics, machine: MachineSpec) -> str:
    """Name the binding constraint of one run.

    Returns one of ``"memory-bound"``, ``"disk-bound"``, ``"congested"``,
    ``"sync-bound"`` or ``"balanced"``. Overloaded runs report the state
    that killed them (memory or disk); otherwise the dominant penalty
    share decides.
    """
    if metrics.max_disk_utilization >= DISK_BOUND_UTILIZATION:
        return "disk-bound"
    if metrics.peak_memory_bytes >= (
        MEMORY_BOUND_FRACTION * machine.usable_memory_bytes
    ):
        return "memory-bound"
    if metrics.overloaded:
        # Overloaded without a memory/disk signature: the congestion
        # penalties pushed the run past the cutoff.
        return "congested"

    breakdown = metrics.time_breakdown()
    total = max(metrics.seconds, 1e-9)
    saturated_rounds = any(
        r.network_saturated for b in metrics.batches for r in b.rounds
    )
    congestion_share = breakdown["thrash"] / total
    if saturated_rounds and (
        metrics.network_overuse_seconds / total > CONGESTED_SHARE
        or congestion_share > CONGESTED_SHARE
    ):
        return "congested"
    sync_share = (breakdown["barrier"] + breakdown["startup"]) / total
    if sync_share > SYNC_BOUND_SHARE:
        return "sync-bound"
    return "balanced"


@dataclass(frozen=True)
class TradeoffPoint:
    """One batch-count setting on the tradeoff curve."""

    batches: int
    seconds: float
    overloaded: bool
    regime: str
    messages_per_round: float
    peak_memory_bytes: float


@dataclass(frozen=True)
class TradeoffCurve:
    """A classified batch sweep with its optimum."""

    points: List[TradeoffPoint]

    @classmethod
    def from_runs(
        cls, runs: Sequence[JobMetrics], machine: MachineSpec
    ) -> "TradeoffCurve":
        points = [
            TradeoffPoint(
                batches=m.num_batches,
                seconds=m.seconds,
                overloaded=m.overloaded,
                regime=classify_regime(m, machine),
                messages_per_round=m.messages_per_round,
                peak_memory_bytes=m.peak_memory_bytes,
            )
            for m in sorted(runs, key=lambda m: m.num_batches)
        ]
        return cls(points=points)

    @property
    def optimum(self) -> Optional[TradeoffPoint]:
        finite = [p for p in self.points if not p.overloaded]
        if not finite:
            return None
        return min(finite, key=lambda p: p.seconds)

    def regimes(self) -> List[str]:
        """Regime label per batch count, in batch order."""
        return [p.regime for p in self.points]

    def advice(self) -> str:
        """One-sentence tuning advice in the spirit of Section 4.10."""
        best = self.optimum
        if best is None:
            return (
                "every setting overloads: reduce the workload (binary-"
                "search it with repro.tuning.gauge) or add machines"
            )
        low_end = self.points[0]
        high_end = self.points[-1]
        if best.batches == low_end.batches and low_end.regime == "balanced":
            return "Full-Parallelism is safe here; fewer rounds win"
        if low_end.regime in ("memory-bound", "disk-bound", "congested"):
            return (
                f"small batch counts are {low_end.regime}; "
                f"{best.batches} batches relieve the pressure before "
                f"synchronisation costs take over (~{high_end.batches} "
                "batches)"
            )
        return f"optimum at {best.batches} batches"

    def to_rows(self) -> List[dict]:
        """Row dicts for tabular rendering (CLI / reports)."""
        return [
            {
                "batches": p.batches,
                "time": f"{p.seconds:.0f}s" if not p.overloaded else "Overload",
                "regime": p.regime,
                "msgs/round": f"{p.messages_per_round:,.0f}",
                "peak MB": f"{p.peak_memory_bytes / 2**20:.1f}",
            }
            for p in self.points
        ]
