"""Machine model: memory capacity, CPU throughput, OS reserve.

The paper's key machine-level observation (Section 4.3) is that the
optimal batch count is reached when per-machine memory use approaches the
*usable* capacity — physical memory minus what the OS and resident
services keep (~2 GB of the 16 GB machines, "usable memory capacity
(≈ 14GB)"). :class:`MachineSpec` encodes exactly those quantities plus a
CPU throughput figure the cost model divides compute work by.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import GB


@dataclass(frozen=True)
class MachineSpec:
    """One simulated machine.

    Attributes
    ----------
    memory_bytes:
        physical RAM (already divided by the simulation scale).
    os_reserve_bytes:
        memory the OS and resident services occupy; the paper's machines
        keep ~2 GB of 16 GB. Usable capacity is the difference.
    cores:
        worker threads available for compute.
    compute_ops_per_second:
        scalar throughput of one core in task "work units" per second;
        engines divide their counted work by ``cores × this``.
    swap_allowance_fraction:
        how far past physical memory the simulator lets a machine go
        (paging) before declaring a hard overload. The region between
        usable and this limit is the thrashing regime.
    """

    memory_bytes: float
    os_reserve_bytes: float
    cores: int
    compute_ops_per_second: float
    swap_allowance_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        if not 0 <= self.os_reserve_bytes < self.memory_bytes:
            raise ConfigurationError(
                "os_reserve_bytes must be in [0, memory_bytes)"
            )
        if self.cores <= 0:
            raise ConfigurationError("cores must be positive")
        if self.compute_ops_per_second <= 0:
            raise ConfigurationError("compute_ops_per_second must be positive")
        if self.swap_allowance_fraction < 0:
            raise ConfigurationError("swap_allowance_fraction must be >= 0")

    @property
    def usable_memory_bytes(self) -> float:
        """Memory a VC-system can use before thrashing begins (~14 GB)."""
        return self.memory_bytes - self.os_reserve_bytes

    @property
    def overload_limit_bytes(self) -> float:
        """Hard limit past which the simulator declares overload."""
        return self.memory_bytes * (1.0 + self.swap_allowance_fraction)

    def scaled(self, scale: float) -> "MachineSpec":
        """Return a copy with capacity quantities divided by ``scale``.

        Compute throughput scales too: the simulation's work counts
        (messages, vertex updates) are 1/scale of the real cluster's, so
        dividing throughput by the same factor keeps simulated seconds
        aligned with real seconds.
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        return replace(
            self,
            memory_bytes=self.memory_bytes / scale,
            os_reserve_bytes=self.os_reserve_bytes / scale,
            compute_ops_per_second=self.compute_ops_per_second / scale,
        )


#: The paper's local machines: 16 GB RAM, 8 cores (i7-3770 @ 3.40 GHz).
#: Throughput is per core, in message-scale work units: ~20 M msgs/s per
#: core matches C++ VC-systems' observed per-message handling cost.
GALAXY_MACHINE = MachineSpec(
    memory_bytes=16 * GB,
    os_reserve_bytes=2 * GB,
    cores=8,
    compute_ops_per_second=20e6,
)

#: The paper's cloud nodes: 16 GB RAM, 15 virtual cores (Xeon E5-2637 v2).
DOCKER_MACHINE = MachineSpec(
    memory_bytes=16 * GB,
    os_reserve_bytes=2 * GB,
    cores=15,
    compute_ops_per_second=16e6,
)
