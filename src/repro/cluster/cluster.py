"""Cluster specifications and the paper's three testbed presets.

A :class:`ClusterSpec` bundles machine count, machine/disk/network specs
and the simulation ``scale``. The scale divides every *capacity-like*
quantity (memory, congestion threshold, bandwidth) by the same factor the
dataset node counts are divided by, so a workload number from the paper
(e.g. 10240 walks per node on DBLP with 8 machines) exercises the same
capacity ratios in simulation as on the real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.disk import DOCKER_SSD, GALAXY_HDD, DiskSpec
from repro.cluster.machine import DOCKER_MACHINE, GALAXY_MACHINE, MachineSpec
from repro.cluster.network import DOCKER_NETWORK, GALAXY_NETWORK, NetworkSpec
from repro.errors import ConfigurationError
from repro.graph.datasets import DEFAULT_SCALE


@dataclass(frozen=True)
class ClusterSpec:
    """A simulated cluster.

    ``machine`` and ``network`` are stored *unscaled* (paper units); the
    ``scaled_machine`` / ``scaled_network`` properties apply ``scale``.
    Disk bandwidth is left unscaled deliberately: spill volume scales
    with the graph, so dividing volume by ``scale`` while keeping
    bandwidth constant would break the disk-utilisation ratios — instead
    the disk bandwidth is scaled too, via ``scaled_disk``.
    """

    name: str
    num_machines: int
    machine: MachineSpec
    disk: DiskSpec
    network: NetworkSpec
    scale: float = DEFAULT_SCALE
    kind: str = "local"
    #: cloud cost rate in credits per machine-hour; None for local clusters.
    credit_rate_per_machine_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ConfigurationError("num_machines must be positive")
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")

    @property
    def scaled_machine(self) -> MachineSpec:
        return self.machine.scaled(self.scale)

    @property
    def scaled_network(self) -> NetworkSpec:
        return self.network.scaled(self.scale)

    @property
    def scaled_disk(self) -> DiskSpec:
        return DiskSpec(
            bandwidth_bytes_per_second=self.disk.bandwidth_bytes_per_second
            / self.scale,
            seek_overhead_seconds=self.disk.seek_overhead_seconds,
            kind=self.disk.kind,
        )

    @property
    def total_memory_bytes(self) -> float:
        """Cluster-wide scaled memory."""
        return self.num_machines * self.scaled_machine.memory_bytes

    def with_machines(self, num_machines: int) -> "ClusterSpec":
        """Same cluster with a different machine count (Fig 3c/5c/7c sweeps)."""
        return replace(self, num_machines=num_machines)

    def with_scale(self, scale: float) -> "ClusterSpec":
        """Same cluster at a different simulation scale."""
        return replace(self, scale=scale)

    def describe(self) -> str:
        """Human-readable one-liner for logs and examples."""
        machine = self.scaled_machine
        return (
            f"{self.name}: {self.num_machines} machines x "
            f"{machine.memory_bytes / 2**30:.3f} GiB (scaled 1/{self.scale:g}), "
            f"{machine.cores} cores, disk={self.disk.kind}"
        )


def galaxy8(scale: float = DEFAULT_SCALE) -> ClusterSpec:
    """The paper's Galaxy-8: 8 local machines, 16 GB, i7-3770, HDD."""
    return ClusterSpec(
        name="galaxy-8",
        num_machines=8,
        machine=GALAXY_MACHINE,
        disk=GALAXY_HDD,
        network=GALAXY_NETWORK,
        scale=scale,
        kind="local",
    )


def galaxy27(scale: float = DEFAULT_SCALE) -> ClusterSpec:
    """The paper's Galaxy-27: 27 machines with the Galaxy-8 spec."""
    return ClusterSpec(
        name="galaxy-27",
        num_machines=27,
        machine=GALAXY_MACHINE,
        disk=GALAXY_HDD,
        network=GALAXY_NETWORK,
        scale=scale,
        kind="local",
    )


def docker32(scale: float = DEFAULT_SCALE) -> ClusterSpec:
    """The paper's Docker-32: 32 cloud nodes, 16 GB, Xeon E5-2637v2, SSD.

    The credit rate is calibrated against Figure 7's dollar captions
    (e.g. 32 machines for ~1600 s at the optimum of Fig 7a cost $57).
    """
    return ClusterSpec(
        name="docker-32",
        num_machines=32,
        machine=DOCKER_MACHINE,
        disk=DOCKER_SSD,
        network=DOCKER_NETWORK,
        scale=scale,
        kind="cloud",
        credit_rate_per_machine_hour=4.0,
    )


def custom_cluster(
    num_machines: int,
    memory_gb: float = 16.0,
    cores: int = 8,
    disk: Optional[DiskSpec] = None,
    network: Optional[NetworkSpec] = None,
    scale: float = DEFAULT_SCALE,
    name: Optional[str] = None,
) -> ClusterSpec:
    """Build an ad-hoc local cluster for examples and what-if studies."""
    machine = MachineSpec(
        memory_bytes=memory_gb * 2**30,
        os_reserve_bytes=min(2.0, memory_gb / 8) * 2**30,
        cores=cores,
        compute_ops_per_second=GALAXY_MACHINE.compute_ops_per_second,
    )
    return ClusterSpec(
        name=name or f"custom-{num_machines}",
        num_machines=num_machines,
        machine=machine,
        disk=disk or GALAXY_HDD,
        network=network or GALAXY_NETWORK,
        scale=scale,
        kind="local",
    )


PRESETS = {
    "galaxy-8": galaxy8,
    "galaxy-27": galaxy27,
    "docker-32": docker32,
}


def cluster_by_name(name: str, scale: float = DEFAULT_SCALE) -> ClusterSpec:
    """Look up a preset cluster by its paper name (case-insensitive)."""
    key = name.strip().lower()
    if key not in PRESETS:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(f"unknown cluster {name!r}; known: {known}")
    return PRESETS[key](scale=scale)

