"""Network model: bandwidth, the congestion knee, and overuse accounting.

Figure 6 of the paper shows the defining nonlinearity of multi-processing:
message volume scales linearly with workload (63.7M → 633.2M per round for
a 10× workload increase) while running time scales *super*-linearly
(173.3 s → 6641.5 s) — "a certain congestion threshold is met". The model
here is a piecewise transfer function: below the per-machine, per-round
congestion threshold, transfer time is volume / bandwidth; above it, an
additional superlinear penalty term models TCP incast, buffer exhaustion
and serialisation queues. Tables 2 and 3 additionally report *network
overuse time* — the duration the link spends at maximum bandwidth — which
the model tracks per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.units import GB, MB


@dataclass(frozen=True)
class NetworkSpec:
    """Static link parameters (per machine).

    Attributes
    ----------
    bandwidth_bytes_per_second:
        effective full-duplex NIC goodput available to the VC-system.
    congestion_threshold_bytes:
        *per-machine* contribution to the per-round traffic the fabric
        sustains before collective queueing effects (incast, switch
        buffer exhaustion) kick in; the cost model multiplies by the
        machine count to obtain the cluster-wide knee. Already divided
        by the simulation scale, like machine memory.
    knee_exponent:
        exponent of the superlinear penalty past the threshold; Figure 6
        (~38x time for ~10x messages at the 1-batch setting) calibrates
        the default together with ``knee_coefficient``.
    knee_coefficient:
        multiplier of the penalty term.
    """

    bandwidth_bytes_per_second: float
    congestion_threshold_bytes: float
    knee_exponent: float = 2.0
    knee_coefficient: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0:
            raise ConfigurationError("network bandwidth must be positive")
        if self.congestion_threshold_bytes <= 0:
            raise ConfigurationError("congestion threshold must be positive")
        if self.knee_exponent < 1.0:
            raise ConfigurationError("knee exponent must be >= 1")
        if self.knee_coefficient < 0:
            raise ConfigurationError("knee coefficient must be >= 0")

    def scaled(self, scale: float) -> "NetworkSpec":
        """Divide volume-like quantities by the simulation scale."""
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        return NetworkSpec(
            bandwidth_bytes_per_second=self.bandwidth_bytes_per_second / scale,
            congestion_threshold_bytes=self.congestion_threshold_bytes / scale,
            knee_exponent=self.knee_exponent,
            knee_coefficient=self.knee_coefficient,
        )


#: Gigabit Ethernet of the Galaxy clusters. Bandwidth is the *effective
#: goodput* for VC-system message traffic (small messages, many peers),
#: roughly a third of line rate. The cluster-wide knee at 20 GB/round is
#: triangulated from the paper: DBLP W=10240 at 1 batch (~37 GB/round
#: cluster-wide) runs 3.65x over its transfer baseline (Figure 6), at
#: 2 batches (~19 GB) it is baseline-linear, and Table 2's (4096, 4
#: machines, 1 batch) at ~15 GB stays linear too.
GALAXY_NETWORK = NetworkSpec(
    bandwidth_bytes_per_second=45 * MB,
    congestion_threshold_bytes=2.5 * GB,
    knee_exponent=1.0,
    knee_coefficient=11.0,
)

#: 10 GbE fabric of the Docker-32 cloud (shared tenancy keeps effective
#: goodput well below line rate; deeper switch buffers push the knee up).
DOCKER_NETWORK = NetworkSpec(
    bandwidth_bytes_per_second=90 * MB,
    congestion_threshold_bytes=3.0 * GB,
    knee_exponent=1.0,
    knee_coefficient=11.0,
)


@dataclass
class RoundNetworkUsage:
    """Network activity of one machine in one round."""

    transfer_seconds: float
    penalty_seconds: float
    bytes_moved: float
    saturated: bool
    cluster_bytes: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.transfer_seconds + self.penalty_seconds


@dataclass
class NetworkModel:
    """Accumulates network activity across rounds for the bottleneck
    machine of each round (the synchronous barrier waits for it)."""

    spec: NetworkSpec
    num_machines: int = 1
    rounds: List[RoundNetworkUsage] = field(default_factory=list)

    @property
    def cluster_threshold_bytes(self) -> float:
        """Cluster-wide congestion knee (per-machine budget x machines)."""
        return self.spec.congestion_threshold_bytes * self.num_machines

    def round_time(
        self, bytes_moved: float, cluster_bytes: Optional[float] = None
    ) -> RoundNetworkUsage:
        """Time to move ``bytes_moved`` through one machine's link.

        The base cost is linear in the bottleneck machine's bytes. The
        congestion penalty is governed by ``cluster_bytes`` — the round's
        *total* network traffic — because the collapse is a fabric-level
        effect (incast, switch buffers): once the cluster-wide volume
        exceeds the threshold, the bottleneck link pays
        ``coeff · base_time · excess_ratio^knee`` extra.
        """
        if bytes_moved <= 0:
            usage = RoundNetworkUsage(0.0, 0.0, 0.0, False, 0.0)
            self.rounds.append(usage)
            return usage
        if cluster_bytes is None:
            cluster_bytes = bytes_moved
        base = bytes_moved / self.spec.bandwidth_bytes_per_second
        threshold = self.cluster_threshold_bytes
        if cluster_bytes > threshold:
            excess_ratio = (cluster_bytes - threshold) / threshold
            penalty = (
                self.spec.knee_coefficient
                * base
                * (excess_ratio ** self.spec.knee_exponent)
            )
            saturated = True
        else:
            penalty = 0.0
            saturated = False
        usage = RoundNetworkUsage(
            transfer_seconds=base,
            penalty_seconds=penalty,
            bytes_moved=bytes_moved,
            saturated=saturated,
            cluster_bytes=cluster_bytes,
        )
        self.rounds.append(usage)
        return usage

    def overuse_seconds(self) -> float:
        """Duration spent at maximum bandwidth ("Overuse Time Network").

        Any round that actually moves bytes runs the link flat-out for
        its transfer portion; we report the transfer time of saturated
        rounds plus a fraction of unsaturated ones proportional to their
        load, matching how the paper's monitors sample bandwidth caps.
        """
        total = 0.0
        for r in self.rounds:
            if r.saturated:
                total += r.transfer_seconds + r.penalty_seconds
            else:
                load = r.cluster_bytes / self.cluster_threshold_bytes
                total += r.transfer_seconds * min(1.0, load)
        return total

    def total_bytes(self) -> float:
        """Bytes moved by the bottleneck machine across all rounds."""
        return sum(r.bytes_moved for r in self.rounds)

    def reset(self) -> None:
        """Clear accumulated per-round history."""
        self.rounds.clear()
