"""Disk model for out-of-core engines (GraphD).

Section 4.4 of the paper shows GraphD's performance is governed by *disk
utilisation*: when per-round spill traffic saturates the disk (100 %
utilisation), messages queue and latency explodes; once the batch count
is large enough that utilisation drops below 100 %, further batching only
adds round-synchronisation overhead (Table 3). :class:`DiskModel`
reproduces those quantities: busy time, utilisation (reported as the
demand ratio, so saturated rounds read as ">100 %" exactly like the
paper's Table 3), overuse duration, and I/O queue length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError
from repro.units import MB


@dataclass(frozen=True)
class DiskSpec:
    """Static disk parameters.

    ``kind`` is cosmetic ("hdd"/"ssd"); behaviour differences come from
    ``bandwidth_bytes_per_second`` and ``seek_overhead_seconds`` (per
    spill burst, modelling head movement on HDDs).
    """

    bandwidth_bytes_per_second: float
    seek_overhead_seconds: float = 0.0
    kind: str = "hdd"

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_second <= 0:
            raise ConfigurationError("disk bandwidth must be positive")
        if self.seek_overhead_seconds < 0:
            raise ConfigurationError("seek overhead must be non-negative")


#: 7200 rpm HDD of the Galaxy machines: ~170 MB/s sequential streaming
#: (GraphD's spill pattern is long sequential writes and read-backs).
GALAXY_HDD = DiskSpec(
    bandwidth_bytes_per_second=170 * MB, seek_overhead_seconds=0.008, kind="hdd"
)

#: SATA SSD of the Docker-32 nodes: ~450 MB/s, negligible seeks.
DOCKER_SSD = DiskSpec(
    bandwidth_bytes_per_second=450 * MB, seek_overhead_seconds=0.0001, kind="ssd"
)


@dataclass
class RoundDiskUsage:
    """Disk activity of one machine in one round.

    ``demand_ratio`` is busy time over the round's non-disk time: values
    above 1.0 mean the round produces spill faster than the disk drains
    it — the paper's "> 100 %" utilisation state.
    """

    busy_seconds: float
    round_seconds: float
    spilled_bytes: float
    queue_length: float
    demand_ratio: float

    @property
    def utilization(self) -> float:
        """Utilisation as Table 3 reports it (may exceed 1.0)."""
        return self.demand_ratio

    @property
    def saturated(self) -> bool:
        return self.demand_ratio >= 1.0


@dataclass
class DiskModel:
    """Accumulates disk activity across rounds for one machine.

    ``saturation_penalty_exponent`` controls how sharply latency grows
    once demanded bandwidth exceeds what the disk provides; Table 3's
    jump from 201 s (27 % util) to 285 s (>100 % util, queue 20256)
    calibrates it.
    """

    spec: DiskSpec
    saturation_penalty_exponent: float = 1.35
    rounds: List[RoundDiskUsage] = field(default_factory=list)

    def round_time(
        self, spilled_bytes: float, other_seconds: float, message_bytes: float
    ) -> RoundDiskUsage:
        """Compute one round's disk usage.

        Parameters
        ----------
        spilled_bytes:
            message bytes streamed through the disk this round.
        other_seconds:
            non-disk time of the round (compute + network + barrier);
            disk I/O overlaps with it.
        message_bytes:
            average message size, used to report queue length in
            *messages* as Table 3 does.

        Returns the usage record (also appended to ``rounds``). The
        caller adds ``round_seconds - other_seconds`` — the
        non-overlapped disk time, inflated by the saturation penalty —
        to the round time.
        """
        if spilled_bytes <= 0:
            usage = RoundDiskUsage(
                0.0, max(other_seconds, 1e-12), 0.0, 0.0, 0.0
            )
            self.rounds.append(usage)
            return usage
        busy = (
            spilled_bytes / self.spec.bandwidth_bytes_per_second
            + self.spec.seek_overhead_seconds
        )
        # Demand ratio > 1 means the round generates spill faster than the
        # disk drains it; the excess waits in the I/O queue.
        demand_ratio = busy / max(other_seconds, 1e-9)
        if demand_ratio > 1.0:
            overflow = busy - other_seconds
            penalty = overflow * (
                demand_ratio ** (self.saturation_penalty_exponent - 1.0)
            )
            round_seconds = other_seconds + overflow + penalty
            backlog_bytes = overflow * self.spec.bandwidth_bytes_per_second
            queue_length = backlog_bytes / max(message_bytes, 1.0)
        else:
            round_seconds = max(other_seconds, busy)
            # Light load: the queue holds roughly what is in flight.
            queue_length = demand_ratio * 64.0
        usage = RoundDiskUsage(
            busy_seconds=busy,
            round_seconds=round_seconds,
            spilled_bytes=spilled_bytes,
            queue_length=queue_length,
            demand_ratio=demand_ratio,
        )
        self.rounds.append(usage)
        return usage

    # ------------------------------------------------------------------
    # Aggregates (Table 3 columns)
    # ------------------------------------------------------------------
    def overuse_seconds(self) -> float:
        """Total duration spent at 100 % utilisation ("Overuse Time I/O")."""
        return sum(r.round_seconds for r in self.rounds if r.saturated)

    def max_utilization(self) -> float:
        """Peak per-round demand ratio across the run (may exceed 1.0)."""
        if not self.rounds:
            return 0.0
        return max(r.demand_ratio for r in self.rounds)

    def mean_queue_length(self) -> float:
        """Average I/O queue length over rounds that touched the disk."""
        active = [r for r in self.rounds if r.spilled_bytes > 0]
        if not active:
            return 0.0
        return sum(r.queue_length for r in active) / len(active)

    def total_spilled_bytes(self) -> float:
        """Bytes streamed through the disk across all rounds."""
        return sum(r.spilled_bytes for r in self.rounds)

    def reset(self) -> None:
        """Clear accumulated per-round history."""
        self.rounds.clear()
