"""Simulated cluster substrate: machines, disks, network, cluster presets.

The paper's three testbeds are modelled as :class:`ClusterSpec` values:

* ``galaxy8()``  — 8 local machines, 16 GB RAM, HDD (paper's Galaxy-8).
* ``galaxy27()`` — same machines, 27 of them (Galaxy-27).
* ``docker32()`` — 32 cloud nodes, 16 GB RAM, SSD (Docker-32).

All specs carry a ``scale`` factor: per-machine memory is divided by the
same factor the dataset node counts are, preserving the memory-pressure
ratios that drive the paper's round-congestion tradeoff.
"""

from repro.cluster.cluster import (
    ClusterSpec,
    custom_cluster,
    docker32,
    galaxy8,
    galaxy27,
)
from repro.cluster.disk import DiskModel, DiskSpec
from repro.cluster.machine import MachineSpec
from repro.cluster.network import NetworkModel, NetworkSpec

__all__ = [
    "MachineSpec",
    "DiskSpec",
    "DiskModel",
    "NetworkSpec",
    "NetworkModel",
    "ClusterSpec",
    "galaxy8",
    "galaxy27",
    "docker32",
    "custom_cluster",
]
