"""Benchmark: regenerate the paper's Table 3.

GraphD disk utilisation vs batch count on Galaxy-27: >100% saturation at 1-2 batches, ~25% floor, optimum at the drop, rising tail.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/table3.txt`` for the rendered table.
"""

def test_table3(record):
    record("table3")
