"""Benchmark: regenerate the paper's Figure 12.

The Section 5 auto-tuner: trained memory models plan decreasing batch schedules that never lose to Full-Parallelism.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig12.txt`` for the rendered table.
"""

def test_fig12(record):
    record("fig12")
