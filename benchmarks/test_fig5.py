"""Benchmark: regenerate the paper's Figure 5.

Galaxy-27 batch sweeps including the billion-edge Twitter/Friendster stand-ins; Twitter BPPR is monotone (Full-Parallelism optimal).

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig5.txt`` for the rendered table.
"""

def test_fig5(record):
    record("fig5")
