"""Benchmark: regenerate the paper's Figure 7.

Docker-32 cloud sweeps priced in credits; ill-chosen batch counts waste significant money versus the per-setting optimum.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig7.txt`` for the rendered table.
"""

def test_fig7(record):
    record("fig7")
