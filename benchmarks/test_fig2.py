"""Benchmark: regenerate the paper's Figure 2.

Full-Parallelism may be suboptimal (DBLP, Galaxy-8): Pregel+ (W=10240), GraphD (6144) and Pregel+(mirror) (160) across the doubling batch axis.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig2.txt`` for the rendered table.
"""

def test_fig2(record):
    record("fig2")
