"""Benchmark: regenerate the paper's Figure 9.

Unequal two-batch splits: the optimum front-loads the first batch (W1 > W2) and the combined run costs more than the halves run separately.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig9.txt`` for the rendered table.
"""

def test_fig9(record):
    record("fig9")
