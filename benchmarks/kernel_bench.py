"""Kernel micro-benchmark: p50 step time vs a committed baseline.

Run from the repo root (CI does)::

    python benchmarks/kernel_bench.py              # compare to baseline
    python benchmarks/kernel_bench.py --update     # rewrite the baseline
    python benchmarks/kernel_bench.py --strict     # non-zero exit on drift
    python benchmarks/kernel_bench.py --crossover  # dense/sparse sweep
    python benchmarks/kernel_bench.py --streaming  # block-streaming kernels
    python benchmarks/kernel_bench.py --workers 1 2 4   # sharded kernels
    python benchmarks/kernel_bench.py --parallel-smoke  # digest identity

The default mode measures the median (p50) ``kernel.step()`` wall-clock
per task on a fixed mid-size Chung-Lu graph and compares it against
``benchmarks/kernel_baseline.json`` with a ±30% tolerance. Drift only
*warns* by default — CI hardware is noisy and a micro-benchmark should
flag, not block — but ``--strict`` turns warnings into a failing exit
for local bisection.

``--crossover`` empirically locates the candidates-per-cell density at
which the dense (mask/accumulator) scatter overtakes the sort-based
segment reduction, for sanity-checking
``repro.graph.csr.DENSE_CANDIDATES_PER_CELL`` after a numpy upgrade.

``--streaming`` reruns the same task suite against a memory-mapped copy
of the benchmark graph with the block size forced small enough that
every round streams multiple CSR row blocks through the scratch arena.
The results land under ``streaming.<task>`` keys in the baseline and
drift only ever warns — the mode exists to keep an eye on the
out-of-core overhead ratio, not to gate merges.

``--workers N [N ...]`` reruns the suite with the intra-task kernel
pool at each worker count (the sharding crossover forced down so the
small benchmark graph actually shards). Results land under
``parallel.wN.<task>`` keys and, like streaming, only ever warn — the
1-CPU CI runners cannot see a thread-level speedup, so the keys track
the dispatch/merge *overhead* trajectory instead.

``--parallel-smoke`` is the blocking leg: it runs every task serially
and at worker counts 2 and 4, digesting each run's full round-summary
stream plus its final result arrays, and exits non-zero on any digest
mismatch — the serial and sharded kernels must agree byte for byte.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.graph.generators import chung_lu  # noqa: E402
from repro.graph.mirrors import build_mirror_plan  # noqa: E402
from repro.graph.partition import hash_partition  # noqa: E402
from repro.messages.routing import PointToPointRouter  # noqa: E402
from repro.rng import make_rng  # noqa: E402
from repro.tasks.base import make_task  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "kernel_baseline.json"

#: (task name, workload, batches) — sized so the whole suite stays under
#: ~20 s on CI hardware while giving every task tens of steps.
SETTINGS = (
    ("mssp", 48.0, 3),
    ("bkhs", 48.0, 3),
    ("bppr", 2048.0, 3),
)

TOLERANCE = 0.30  # fractional drift tolerated before warning

GRAPH_NODES = 4000
GRAPH_AVG_DEGREE = 8.0
MAX_STEPS = 200


def _bench_graph():
    return chung_lu(
        GRAPH_NODES, GRAPH_AVG_DEGREE, seed=1234, name="kernel-bench"
    )


def measure() -> dict:
    """p50 step milliseconds per task on the fixed benchmark graph."""
    return _measure_tasks(_bench_graph())


def measure_streaming() -> dict:
    """p50 step milliseconds with the block-streaming kernel variants.

    The benchmark graph is saved to a temporary CSR directory and
    reopened memory-mapped; the streaming block size is forced down to
    4096 arcs (~8 blocks per full-frontier round on this graph) so the
    per-block expand/reduce/merge path is what gets timed.
    """
    import tempfile

    from repro.graph import csr as csr_mod
    from repro.graph.io import save_mapped

    graph = _bench_graph()
    saved_min = csr_mod.MIN_STREAM_BLOCK_ARCS
    with tempfile.TemporaryDirectory() as tmp:
        mapped = save_mapped(graph, Path(tmp) / "kernel-bench.csr")
        csr_mod.MIN_STREAM_BLOCK_ARCS = 1 << 12
        csr_mod.configure_streaming(max_ram_bytes=1)  # clamp to the floor
        try:
            return _measure_tasks(mapped, prefix="streaming.")
        finally:
            csr_mod.MIN_STREAM_BLOCK_ARCS = saved_min
            csr_mod.configure_streaming(None)


#: Crossover forced for the parallel modes: the benchmark graph has
#: ~32 K arcs, so the production ``DEFAULT_MIN_SHARD_CANDIDATES`` would
#: keep every round serial and the sweep would measure nothing.
PARALLEL_MIN_SHARD_CANDIDATES = 1 << 10

#: Worker counts exercised by the blocking digest smoke.
SMOKE_WORKER_COUNTS = (2, 4)


def measure_parallel(worker_counts) -> dict:
    """p50 step milliseconds with the sharded kernels at each count."""
    from repro.perf import kernel_pool

    graph = _bench_graph()
    results = {}
    try:
        for workers in worker_counts:
            kernel_pool.configure_kernel_workers(
                workers,
                min_shard_candidates=PARALLEL_MIN_SHARD_CANDIDATES,
            )
            results.update(
                _measure_tasks(graph, prefix=f"parallel.w{workers}.")
            )
    finally:
        kernel_pool.reset_kernel_pool()
    return results


def _digest_update(h, obj) -> None:
    """Fold one round-summary / result object into a running digest."""
    if isinstance(obj, np.ndarray):
        h.update(obj.tobytes())
    elif isinstance(obj, dict):
        for key in sorted(obj):
            h.update(str(key).encode())
            _digest_update(h, obj[key])
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            _digest_update(h, item)
    else:
        h.update(repr(obj).encode())


def _digest_tasks(graph) -> dict:
    """blake2b over every task's round stream + final result arrays."""
    import hashlib

    partition = hash_partition(graph, 4)
    plan = build_mirror_plan(graph, partition)
    digests = {}
    for task_name, workload, batches in SETTINGS:
        h = hashlib.blake2b(digest_size=16)
        for batch in range(batches):
            spec = make_task(task_name, graph, workload)
            router = PointToPointRouter(graph, plan)
            kernel = spec.make_kernel(
                router, workload, make_rng(97 + batch, label=task_name)
            )
            for _ in range(MAX_STEPS):
                summary = kernel.step()
                _digest_update(
                    h,
                    (
                        summary.routed.network_messages,
                        summary.routed.local_messages,
                        summary.compute_ops,
                        summary.task_state_bytes,
                        summary.active_vertices,
                        summary.done,
                    ),
                )
                if summary.done:
                    break
            _digest_update(h, kernel.result)
        digests[task_name] = h.hexdigest()
    return digests


def run_parallel_smoke() -> int:
    """Blocking check: sharded digests must equal the serial digests."""
    from repro.perf import kernel_pool

    graph = _bench_graph()
    try:
        kernel_pool.reset_kernel_pool()
        serial = _digest_tasks(graph)
        failures = 0
        for workers in SMOKE_WORKER_COUNTS:
            kernel_pool.configure_kernel_workers(
                workers, min_shard_candidates=1
            )
            before = kernel_pool.kernel_pool_stats()["sharded_dispatches"]
            sharded = _digest_tasks(graph)
            after = kernel_pool.kernel_pool_stats()["sharded_dispatches"]
            for task_name, digest in sharded.items():
                status = "ok" if digest == serial[task_name] else "MISMATCH"
                print(
                    f"workers={workers} {task_name}: serial "
                    f"{serial[task_name]} vs sharded {digest} [{status}]"
                )
                failures += digest != serial[task_name]
            if after <= before:
                # A digest match proves nothing if the sharded path
                # never actually dispatched.
                print(
                    f"workers={workers}: no sharded dispatches — the "
                    "parallel path did not run"
                )
                failures += 1
    finally:
        kernel_pool.reset_kernel_pool()
    if failures:
        print(f"FAILED: {failures} parallel-kernel digest mismatches")
        return 1
    print("all parallel-kernel digests byte-identical to serial")
    return 0


def _measure_tasks(graph, prefix: str = "") -> dict:
    """Shared timing loop for the in-RAM and streaming modes."""
    partition = hash_partition(graph, 4)
    plan = build_mirror_plan(graph, partition)
    results = {}
    for task_name, workload, batches in SETTINGS:
        step_seconds = []
        for batch in range(batches):
            spec = make_task(task_name, graph, workload)
            router = PointToPointRouter(graph, plan)
            kernel = spec.make_kernel(
                router, workload, make_rng(97 + batch, label=task_name)
            )
            for _ in range(MAX_STEPS):
                start = time.perf_counter()
                summary = kernel.step()
                step_seconds.append(time.perf_counter() - start)
                if summary.done:
                    break
        results[prefix + task_name] = {
            "p50_ms": round(statistics.median(step_seconds) * 1000.0, 4),
            "steps": len(step_seconds),
        }
    return results


def compare(current: dict, baseline: dict) -> list:
    """Human-readable drift warnings (empty when within tolerance)."""
    warnings = []
    for task, entry in current.items():
        base = baseline.get(task)
        if base is None:
            warnings.append(f"{task}: no baseline entry (run --update)")
            continue
        drift = entry["p50_ms"] / base["p50_ms"] - 1.0
        if abs(drift) > TOLERANCE:
            direction = "slower" if drift > 0 else "faster"
            warnings.append(
                f"{task}: p50 {entry['p50_ms']:.3f} ms vs baseline "
                f"{base['p50_ms']:.3f} ms ({abs(drift) * 100:.0f}% "
                f"{direction}, tolerance ±{TOLERANCE * 100:.0f}%)"
            )
    return warnings


def run_crossover() -> int:
    """Sweep candidate density; report where dense overtakes sparse."""
    from repro.graph.csr import (
        DENSE_CANDIDATES_PER_CELL,
        scatter_min_dense,
        segment_min,
    )

    rng = np.random.default_rng(5)
    num_rows, num_cols = 48, 4000
    cells = num_rows * num_cols
    print(f"state matrix {num_rows}x{num_cols} ({cells} cells)")
    print(f"{'cand/cell':>10}  {'sparse ms':>10}  {'dense ms':>10}  winner")
    crossover = None
    for density in (1 / 128, 1 / 64, 1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1):
        size = max(1, int(cells * density))
        rows = rng.integers(0, num_rows, size=size, dtype=np.int64)
        cols = rng.integers(0, num_cols, size=size, dtype=np.int64)
        values = rng.random(size)
        state = np.full((num_rows, num_cols), np.inf)
        mask = np.zeros((num_rows, num_cols), dtype=bool)

        start = time.perf_counter()
        for _ in range(5):
            segment_min(rows, cols, values, num_cols)
        sparse_ms = (time.perf_counter() - start) / 5 * 1000

        start = time.perf_counter()
        for _ in range(5):
            scatter_min_dense(rows, cols, values, state, mask)
        dense_ms = (time.perf_counter() - start) / 5 * 1000

        winner = "dense" if dense_ms < sparse_ms else "sparse"
        if winner == "dense" and crossover is None:
            crossover = density
        print(
            f"{density:>10.4f}  {sparse_ms:>10.3f}  {dense_ms:>10.3f}"
            f"  {winner}"
        )
    print(
        f"\nmeasured crossover ~{crossover}; committed "
        f"DENSE_CANDIDATES_PER_CELL = {DENSE_CANDIDATES_PER_CELL}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on drift (default: warn only)",
    )
    parser.add_argument(
        "--crossover",
        action="store_true",
        help="sweep the dense/sparse scatter crossover instead",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="benchmark the block-streaming kernels (warn-only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="benchmark the sharded kernels at these intra-task worker "
        "counts (warn-only; keys parallel.wN.<task>)",
    )
    parser.add_argument(
        "--parallel-smoke",
        action="store_true",
        help="blocking digest check: serial vs sharded kernels must "
        "match byte for byte",
    )
    args = parser.parse_args(argv)

    if args.crossover:
        return run_crossover()
    if args.parallel_smoke:
        return run_parallel_smoke()

    if args.workers:
        current = measure_parallel(args.workers)
    elif args.streaming:
        current = measure_streaming()
    else:
        current = measure()
    for task, entry in current.items():
        print(f"{task}: p50 {entry['p50_ms']:.3f} ms over {entry['steps']} steps")

    if args.update or not BASELINE_PATH.exists():
        merged = dict(current)
        if BASELINE_PATH.exists():
            # Keep the other mode's keys: --streaming --update must not
            # drop the in-RAM baselines, and vice versa.
            merged = {
                **json.loads(BASELINE_PATH.read_text(encoding="utf-8")),
                **current,
            }
        BASELINE_PATH.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote baseline {BASELINE_PATH}")
        return 0

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    warnings = compare(current, baseline)
    for line in warnings:
        print(f"WARNING: {line}")
    if not warnings:
        print(f"all tasks within ±{TOLERANCE * 100:.0f}% of baseline")
    if args.streaming or args.workers:
        # The streaming and parallel comparisons are informational:
        # overhead depends on the forced block size / host core count
        # and page-cache state, so they never block.
        return 0
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
