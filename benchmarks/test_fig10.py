"""Benchmark: regenerate the paper's Figure 10.

Whole-graph access mode vs default partitioning on the Figure 5c settings, including the final aggregation cost.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig10.txt`` for the rendered table.
"""

def test_fig10(record):
    record("fig10")
