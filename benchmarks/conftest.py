"""Benchmark harness plumbing.

Every benchmark module regenerates one paper table/figure through the
experiment harness, timed by pytest-benchmark, and asserts the paper's
qualitative claims hold. Rendered tables are written to
``benchmarks/reports/`` so `EXPERIMENTS.md` can be rebuilt from a bench
run (``vcrepro report`` does the same without pytest).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.base import ExperimentConfig
from repro.experiments.runner import run_experiment

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture
def record(benchmark, config, report_dir):
    """Fixture: run one experiment under the benchmark timer, persist
    its rendered tables, and assert the paper's claims."""

    def _record(experiment_id):
        return run_and_record(experiment_id, benchmark, config, report_dir)

    return _record


def run_and_record(experiment_id, benchmark, config, report_dir):
    """Run one experiment under the benchmark timer and persist it.

    The benchmark measures a full regeneration of the table/figure
    (single round — these are simulations, not microbenchmarks).
    """
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id, config),
        rounds=1,
        iterations=1,
    )
    (report_dir / f"{experiment_id}.txt").write_text(
        result.to_text() + "\n", encoding="utf-8"
    )
    (report_dir / f"{experiment_id}.md").write_text(
        result.to_markdown() + "\n", encoding="utf-8"
    )
    failed = [text for text, holds in result.claims.items() if not holds]
    assert not failed, (
        f"{experiment_id}: paper claims not reproduced: {failed}"
    )
    return result
