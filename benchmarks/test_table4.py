"""Benchmark: regenerate the paper's Table 4.

GraphLab sync vs async: async wins PageRank (barrier elimination) but loses heavy BPPR (no combining + locking), with machine-count scaling.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/table4.txt`` for the rendered table.
"""

def test_table4(record):
    record("table4")
