"""Benchmark: regenerate the paper's Figure 11, measured.

Figure 11 is the paper's correlation diagram; this benchmark measures
the sign of every arrow (workload -> congestion -> memory/disk; machine
count and batch count as relief factors; memory size pushing the bound
state away) on controlled sweeps.

See ``benchmarks/reports/fig11.txt`` for the rendered table.
"""


def test_fig11(record):
    record("fig11")
