"""Benchmark: regenerate the paper's Figure 8.

Twitter on Docker-32: residual memory makes Full-Parallelism optimal for BPPR but not for MSSP.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig8.txt`` for the rendered table.
"""

def test_fig8(record):
    record("fig8")
