"""Benchmark: regenerate the paper's Figure 6.

Per-round message counts scale linearly with workload while running time turns superlinear past the congestion threshold.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig6.txt`` for the rendered table.
"""

def test_fig6(record):
    record("fig6")
