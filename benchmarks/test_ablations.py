"""Benchmark: the ablation study (internal validity).

Disables each modelled cost-model mechanism in turn (congestion knee,
residual memory, round overheads, thrash/overload policy) and checks
that the corresponding paper effect disappears — evidence the
reproduction produces the paper's shapes for the right reasons.

See ``benchmarks/reports/ablations.txt`` for the rendered table.
"""


def test_ablations(record):
    record("ablations")
