"""Benchmark: regenerate the paper's Figure 4.

The optimal batch count grows with the BPPR workload (1024 -> 1 batch, 10240 -> 2, 12288 -> 4).

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig4.txt`` for the rendered table.
"""

def test_fig4(record):
    record("fig4")
