"""Out-of-core smoke test under a hard address-space cap.

Run from the repo root (CI does)::

    python benchmarks/oocore_smoke.py                  # both legs
    python benchmarks/oocore_smoke.py --cap-bytes 2g   # custom cap

The parent forks two children, each with ``RLIMIT_AS`` capped (default
1.25 GiB) around the twitter profile at scale ``--scale`` (default 50,
an ~30 M-arc graph whose in-RAM build needs ~2.2 GiB of peak heap):

* the **in-RAM leg** must *fail* — the monolithic edge-list build
  exceeds the cap and dies with ``MemoryError`` (exit code 3); if it
  survives, the cap is meaningless and the smoke test fails;
* the **mapped leg** must *succeed* — with a 256 MiB ``--max-ram``
  streaming budget the same profile auto-dispatches to the chunked
  on-disk builder and block-streaming kernels, runs a BKHS batch
  end-to-end under the cap, and reports its peak RSS as JSON.

Exit status is non-zero unless both legs behave as required, making
this the CI gate for the claim "the out-of-core pipeline completes
workloads the in-RAM path cannot".
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

DEFAULT_CAP_BYTES = 1 << 30 | 1 << 28  # 1.25 GiB
DEFAULT_SCALE = 50
STREAM_BUDGET_BYTES = 256 << 20

#: Child exit code for "died of MemoryError", distinct from crashes.
MEMORY_ERROR_EXIT = 3


def _parse_bytes(text: str) -> int:
    suffixes = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    raw = text.strip().lower().rstrip("b")
    multiplier = 1
    if raw and raw[-1] in suffixes:
        multiplier = suffixes[raw[-1]]
        raw = raw[:-1]
    value = int(float(raw) * multiplier)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"bad byte count: {text!r}")
    return value


def _cap_address_space(cap_bytes: int) -> None:
    import resource

    resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, cap_bytes))


def _child_in_ram(scale: int, cap_bytes: int) -> int:
    """Build the twitter graph fully in RAM; expected to die at the cap."""
    _cap_address_space(cap_bytes)
    try:
        from repro.graph.datasets import PAPER_DATASETS

        graph = PAPER_DATASETS["twitter"].instantiate(scale=scale)
    except MemoryError:
        print("in-ram: MemoryError at the cap, as expected")
        return MEMORY_ERROR_EXIT
    print(f"in-ram: built {graph.num_arcs} arcs inside the cap")
    return 0


def _child_mapped(scale: int, cap_bytes: int) -> int:
    """Out-of-core path end-to-end: build mapped, stream a BKHS batch."""
    _cap_address_space(cap_bytes)
    from repro.graph.csr import configure_streaming
    from repro.graph.datasets import load_dataset
    from repro.graph.mirrors import build_mirror_plan
    from repro.graph.partition import hash_partition
    from repro.messages.routing import PointToPointRouter
    from repro.perf import memory
    from repro.rng import make_rng
    from repro.tasks.base import make_task

    configure_streaming(max_ram_bytes=STREAM_BUDGET_BYTES)
    memory.note_phase("start")
    graph = load_dataset("twitter", scale=scale)
    if not graph.mapped:
        print("mapped: load_dataset did not dispatch out-of-core")
        return 1
    memory.note_phase("build")
    spec = make_task("bkhs", graph, 32.0)
    router = PointToPointRouter(
        graph, build_mirror_plan(graph, hash_partition(graph, 4))
    )
    kernel = spec.make_kernel(router, 32.0, make_rng(123, label="smoke"))
    steps = 0
    for _ in range(64):
        steps += 1
        if kernel.step().done:
            break
    memory.note_phase("kernel")
    stats = memory.memory_stats()
    print(
        json.dumps(
            {
                "graph_arcs": int(graph.num_arcs),
                "kernel_steps": steps,
                "cap_bytes": cap_bytes,
                "stream_budget_bytes": STREAM_BUDGET_BYTES,
                "peak_rss_bytes": stats["peak_rss_bytes"],
                "phase_high_water_bytes": stats["phase_high_water_bytes"],
            },
            sort_keys=True,
        )
    )
    return 0


def _spawn(child: str, scale: int, cap_bytes: int, cache_dir: str):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parent.parent / "src"
    )
    return subprocess.run(
        [
            sys.executable,
            os.fspath(Path(__file__).resolve()),
            "--child",
            child,
            "--scale",
            str(scale),
            "--cap-bytes",
            str(cap_bytes),
        ],
        env=env,
        text=True,
        capture_output=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", choices=["inram", "mapped"])
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument(
        "--cap-bytes", type=_parse_bytes, default=DEFAULT_CAP_BYTES
    )
    args = parser.parse_args(argv)

    if args.child == "inram":
        return _child_in_ram(args.scale, args.cap_bytes)
    if args.child == "mapped":
        return _child_mapped(args.scale, args.cap_bytes)

    failures = 0
    with tempfile.TemporaryDirectory(prefix="oocore-smoke-") as cache_dir:
        in_ram = _spawn("inram", args.scale, args.cap_bytes, cache_dir)
        if in_ram.returncode == MEMORY_ERROR_EXIT:
            print(
                f"PASS in-ram leg: MemoryError under the "
                f"{args.cap_bytes / 2**30:.2f} GiB cap"
            )
        else:
            failures += 1
            print(
                f"FAIL in-ram leg: expected exit {MEMORY_ERROR_EXIT} "
                f"(MemoryError), got {in_ram.returncode}\n"
                f"{in_ram.stdout}{in_ram.stderr}"
            )

        mapped = _spawn("mapped", args.scale, args.cap_bytes, cache_dir)
        if mapped.returncode == 0:
            report = mapped.stdout.strip().splitlines()[-1]
            print(f"PASS mapped leg: {report}")
        else:
            failures += 1
            print(
                f"FAIL mapped leg: exit {mapped.returncode}\n"
                f"{mapped.stdout}{mapped.stderr}"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
