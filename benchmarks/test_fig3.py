"""Benchmark: regenerate the paper's Figure 3.

Galaxy-8 batch sweeps varying task, dataset, machine count and system; most curves are not monotone in the batch count.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/fig3.txt`` for the rendered table.
"""

def test_fig3(record):
    record("fig3")
