"""Benchmark: regenerate the paper's Table 2.

(workload, batches) vs per-machine memory, time and network overuse on 4 and 8 machines, with the paper's overflow cells.

Asserts every qualitative claim of the paper holds in the reproduction;
see ``benchmarks/reports/table2.txt`` for the rendered table.
"""

def test_table2(record):
    record("table2")
