"""Chaos smoke test: kill workers mid-run, lose zero requests.

Run from the repo root (CI does)::

    python benchmarks/chaos_smoke.py              # both legs
    python benchmarks/chaos_smoke.py --jobs 4     # wider pool

Two legs, each a PASS/FAIL gate:

* the **pool leg** fans a batch of engine jobs over a process pool and
  SIGKILLs a seeded choice of worker partway through the map. The
  broken pool must route every caught item through the isolated-respawn
  path (:mod:`repro.perf.parallel`) and the final results must be
  byte-identical to the serial ground truth — crash recovery may cost
  wall-clock, never answers;
* the **serve leg** drives the preemptive scheduling service over a
  seeded arrival stream with an injected fault plan and asserts that
  every request completes (zero drops) and that a repeat run under the
  same seed is byte-identical — fault recovery and preemption both live
  on the simulated clock, so chaos cannot leak nondeterminism.

Exit status is non-zero unless both legs hold, making this the CI gate
for the claim "supervised workers and barrier preemption lose no
requests under induced failures".
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

DEFAULT_ITEMS = 6
DEFAULT_JOBS = 3
DEFAULT_SEED = 20230328
KILL_AFTER_SECONDS = 0.4

#: Per-item think time keeping the pool busy long enough for the chaos
#: kill to land while futures are genuinely in flight.
ITEM_SLEEP_SECONDS = 0.6


def _job_digest(index: int) -> str:
    """One deterministic unit of work: a seeded engine job, digested.

    The sleep keeps the worker occupied so the chaos kill catches the
    pool mid-map; it does not affect the digest (the job runs on the
    simulated clock).
    """
    time.sleep(ITEM_SLEEP_SECONDS)
    from repro.batching.executor import MultiProcessingJob
    from repro.cluster.cluster import cluster_by_name
    from repro.graph.datasets import load_dataset
    from repro.rng import derive_seed
    from repro.sim.metrics import pack_job
    from repro.tasks.base import make_task

    graph = load_dataset("dblp")
    task = make_task("bppr", graph, 8.0)
    job = MultiProcessingJob("pregel+", cluster_by_name("galaxy-8"))
    metrics = job.run(
        task, num_batches=1, seed=derive_seed(DEFAULT_SEED, f"chaos/{index}")
    )
    payload = bytes(pack_job(metrics)["payload"])
    return hashlib.sha256(payload).hexdigest()


class _WorkerKiller:
    """Pool observer that SIGKILLs a seeded choice of live worker."""

    def __init__(self, seed: int, kill_after: float) -> None:
        from repro.rng import make_rng

        self.rng = make_rng(seed, label="chaos/killer")
        self.kill_after = kill_after
        self.kills = 0
        self._thread = None

    def __call__(self, executor) -> None:
        pids = sorted(executor._processes)
        if not pids or self._thread is not None:
            return
        victim = pids[int(self.rng.integers(len(pids)))]

        def strike() -> None:
            time.sleep(self.kill_after)
            try:
                os.kill(victim, signal.SIGKILL)
                self.kills += 1
            except OSError:
                pass  # worker already gone; the map simply stays clean

        self._thread = threading.Thread(target=strike, daemon=True)
        self._thread.start()


def _pool_leg(items: int, jobs: int, seed: int) -> int:
    from repro.perf.parallel import (
        configure_retries,
        parallel_map,
        reset_supervision,
        set_pool_observer,
        supervision_stats,
    )

    configure_retries(max_retries=3, backoff_seconds=0.05, seed=seed,
                      jitter=0.25)
    reset_supervision()
    killer = _WorkerKiller(seed, KILL_AFTER_SECONDS)
    previous = set_pool_observer(killer)
    try:
        chaotic = parallel_map(
            _job_digest, [(i,) for i in range(items)], jobs=jobs
        )
    finally:
        set_pool_observer(previous)
    stats = supervision_stats()
    serial = [_job_digest(i) for i in range(items)]

    failures = 0
    if chaotic != serial:
        failures += 1
        print("FAIL pool leg: chaotic results differ from serial baseline")
    if killer.kills < 1:
        failures += 1
        print("FAIL pool leg: the chaos killer never landed a SIGKILL")
    if stats["items_lost"] > 0:
        failures += 1
        print(f"FAIL pool leg: {stats['items_lost']:.0f} items lost")
    if killer.kills and stats["items_recovered"] < 1:
        failures += 1
        print("FAIL pool leg: no item went through isolated recovery")
    if not failures:
        print(
            "PASS pool leg: "
            + json.dumps(
                {
                    "items": items,
                    "kills": killer.kills,
                    "pool_crashes": stats["pool_crashes"],
                    "items_recovered": stats["items_recovered"],
                    "retries": stats["retries"],
                    "backoff_seconds_total": round(
                        stats["backoff_seconds_total"], 4
                    ),
                },
                sort_keys=True,
            )
        )
    return failures


def _serve_metrics(seed: int):
    from repro.cluster.cluster import cluster_by_name
    from repro.engines.registry import create_engine
    from repro.faults.plan import mixed_fault_plan
    from repro.graph.datasets import load_dataset
    from repro.sched.arrivals import generate_arrivals
    from repro.sched.policy import ServicePolicy
    from repro.sched.service import SchedulerService

    cluster = cluster_by_name("galaxy-8")
    service = SchedulerService(
        create_engine("pregel+", cluster),
        load_dataset("dblp"),
        kinds=("bppr", "mssp"),
        seed=seed,
        task_params={"mssp": {"sample_limit": 16}},
        fault_plan=mixed_fault_plan(seed, cluster.num_machines, 0.05),
        checkpoint_every=2,
        policy=ServicePolicy(
            priority_classes=2, preempt=True, aging_seconds=None
        ),
    )
    requests = generate_arrivals(
        0.5,
        30,
        seed=seed,
        kinds=("bppr", "mssp"),
        priority_classes=2,
        deadlines={0: 240.0},
    )
    return len(requests), service.run(requests)


def _serve_leg(seed: int) -> int:
    # The first service constructed in a process trains its memory
    # models cold, perturbing downstream RNG; warm up once, then
    # compare two warm runs for byte-identity.
    _serve_metrics(seed)
    submitted, first = _serve_metrics(seed)
    _, second = _serve_metrics(seed)

    failures = 0
    if first.completed_tasks != submitted or first.dropped_requests:
        failures += 1
        print(
            f"FAIL serve leg: {submitted} submitted, "
            f"{first.completed_tasks} completed, "
            f"{first.dropped_requests} dropped"
        )
    digests = [
        hashlib.sha256(
            json.dumps(
                m.to_dict(include_latencies=True), sort_keys=True
            ).encode("utf-8")
        ).hexdigest()
        for m in (first, second)
    ]
    if digests[0] != digests[1]:
        failures += 1
        print("FAIL serve leg: repeat run under faults is nondeterministic")
    if not failures:
        summary = first.resilience_summary()
        print(
            "PASS serve leg: "
            + json.dumps(
                {
                    "requests": submitted,
                    "completed": first.completed_tasks,
                    "dropped": first.dropped_requests,
                    "preemptions": summary["preemptions"],
                    "resumes": summary["resumes"],
                    "deadline_misses": summary["deadline_misses"],
                    "digest": digests[0][:16],
                },
                sort_keys=True,
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=DEFAULT_ITEMS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--leg",
        choices=["pool", "serve", "both"],
        default="both",
        help="which chaos leg to run",
    )
    args = parser.parse_args(argv)

    failures = 0
    if args.leg in ("pool", "both"):
        failures += _pool_leg(args.items, args.jobs, args.seed)
    if args.leg in ("serve", "both"):
        failures += _serve_leg(args.seed)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
