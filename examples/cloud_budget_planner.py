#!/usr/bin/env python3
"""Cloud budget planning: batch schemes as money (Section 4.6).

Scenario: you run recurring multi-processing jobs on a 32-node cloud
cluster billed per machine-hour. The batch count is a *cost* knob: an
ill-chosen setting either overloads (you pay for 100 minutes of nothing)
or crawls through synchronisation overhead. This example prices a
day's job mix on the simulated Docker-32 testbed and picks the cheapest
batch scheme per job, reproducing Figure 7's finding that tuning the
batch scheme is a cloud budget optimisation.

Run:  python examples/cloud_budget_planner.py
"""

from repro import credit_cost, docker32, load_dataset, make_task
from repro.batching.executor import MultiProcessingJob

#: The day's job mix: (label, dataset, task, workload).
JOBS = (
    ("related-pins refresh", "dblp", "bppr", 40960),
    ("route planning batch", "orkut", "mssp", 512),
    ("friend-candidate scan", "web-st", "bkhs", 8192),
)

BATCH_CHOICES = (1, 2, 4, 8, 16)


def main() -> None:
    cluster = docker32()
    print(f"cluster: {cluster.describe()}")
    print(
        f"billing: {cluster.credit_rate_per_machine_hour:.1f} credits "
        "per machine-hour\n"
    )

    naive_total = 0.0
    naive_lower_bound = False
    tuned_total = 0.0

    for label, dataset_name, task_name, workload in JOBS:
        graph = load_dataset(dataset_name)
        job = MultiProcessingJob("pregel+", cluster)
        print(f"{label}  ({task_name.upper()} W={workload:g} on {dataset_name})")

        best = None
        for batches in BATCH_CHOICES:
            task = make_task(task_name, graph, workload)
            metrics = job.run(task, num_batches=batches)
            cost = credit_cost(metrics, cluster)
            marker = ""
            if batches == 1:
                naive_total += cost.credits
                naive_lower_bound |= cost.lower_bound
            if not metrics.overloaded and (
                best is None or cost.credits < best[1].credits
            ):
                best = (batches, cost, metrics)
                marker = ""
            print(
                f"   {batches:>2} batches: {metrics.time_label():>10} "
                f"-> {cost.label():>7}{marker}"
            )
        if best is None:
            print("   => no batch count avoids overload; shrink the job\n")
            continue
        batches, cost, metrics = best
        tuned_total += cost.credits
        print(
            f"   => book {batches} batches: {cost.label()} "
            f"({metrics.time_label()})\n"
        )

    prefix = ">" if naive_lower_bound else ""
    print(
        f"daily bill, everything Full-Parallelism: {prefix}"
        f"${naive_total:.0f} (lower bound when jobs overload)"
    )
    print(f"daily bill, tuned batch schemes:         ${tuned_total:.0f}")
    if tuned_total > 0:
        print(
            f"savings: {(naive_total - tuned_total) / naive_total:.0%}+ — "
            '"optimizing the batch scheme immediately implies a cloud '
            'budget optimization."'
        )


if __name__ == "__main__":
    main()
