#!/usr/bin/env python3
"""Auto-tuning case study: the Section 5 cost-based batch planner.

Scenario: you operate a 4-machine cluster and receive BPPR jobs of
varying workloads. Running everything Full-Parallelism overloads the
cluster on heavy jobs; hand-tuning batch counts per workload does not
scale. The paper's answer (Section 5):

1. run a *light* training ladder (workloads 2, 4, 8, ...) once;
2. fit the exponential memory models M*(W) = a1*W^b1 + c1 and
   Mr(W) = a2*W^b2 + c2 with Levenberg-Marquardt;
3. for each job, compute a batch schedule W1 >= W2 >= ... that keeps
   every machine under p% of physical memory (Equations 1-6) —
   later batches shrink because residual memory accumulates.

Run:  python examples/autotuned_bppr.py
"""

from repro import bppr_task, galaxy8, load_dataset
from repro.tuning.autotuner import AutoTuner

WORKLOADS = (2560, 3584, 4608, 5632, 6656)


def main() -> None:
    graph = load_dataset("dblp")
    cluster = galaxy8().with_machines(4)
    print(f"cluster: {cluster.describe()}")
    print(f"dataset: {graph}\n")

    tuner = AutoTuner.for_engine(
        "pregel+", cluster, lambda w: bppr_task(graph, w), seed=7
    )

    # --- the one-off training phase -----------------------------------
    model = tuner.train(max(WORKLOADS))
    print("trained memory models (Levenberg-Marquardt fits):")
    print(
        f"  peak     M*(W) = {model.peak.a:.3g} * W^{model.peak.b:.3f} "
        f"+ {model.peak.c:.3g}   (rmse {model.peak.rmse:.3g})"
    )
    print(
        f"  residual Mr(W) = {model.residual.a:.3g} * "
        f"W^{model.residual.b:.3f} + {model.residual.c:.3g}\n"
    )

    # --- plan and execute each job -------------------------------------
    print(
        f"{'workload':>9} {'full-parallelism':>17} {'optimized':>10}  schedule"
    )
    for workload in WORKLOADS:
        report = tuner.run(workload)
        schedule = ", ".join(f"{w:.0f}" for w in report.schedule)
        print(
            f"{workload:>9} {report.full_parallelism.time_label():>17} "
            f"{report.optimized.time_label():>10}  [{schedule}]"
        )

    print(
        "\nThe planned schedules decrease monotonically — later batches "
        "carry less\nbecause the residual memory of earlier batches is "
        "still resident\n(the paper's example for W=5120 was "
        "[2747, 1388, 644, 266, 75])."
    )


if __name__ == "__main__":
    main()
