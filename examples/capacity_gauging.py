#!/usr/bin/env python3
"""Capacity gauging and schedule baselines (Section 4.10's guidelines).

The paper closes its evaluation with two practitioner guidelines:

1. *"gauge a suitable workload ... via a trial-and-error process using a
   binary search"* — implemented by ``repro.tuning.gauge``;
2. *"later batches should have smaller workloads"* — compare a naive
   equal split, a hand-tuned geometric split, and the trained planner.

Run:  python examples/capacity_gauging.py
"""

from repro import bppr_task, galaxy8, load_dataset
from repro.batching.executor import MultiProcessingJob
from repro.batching.schemes import equal_batches, geometric_batches
from repro.engines.registry import create_engine
from repro.tuning.autotuner import AutoTuner
from repro.tuning.gauge import gauge_max_workload


def main() -> None:
    graph = load_dataset("dblp")
    cluster = galaxy8().with_machines(4)
    engine = create_engine("pregel+", cluster)
    print(f"cluster: {cluster.describe()}\n")

    # --- guideline 1: binary-search the capacity -----------------------
    print("binary-searching the largest safe Full-Parallelism workload...")
    gauge = gauge_max_workload(
        engine, lambda w: bppr_task(graph, w), upper_bound=16384,
        lower_bound=128, seed=3,
    )
    for trial in gauge.trials:
        state = "OVERLOADS" if trial.overloaded else "safe"
        print(
            f"  trial W={trial.workload:>7.0f}: {state:>10} "
            f"(peak {trial.peak_memory_bytes / 2**20:.1f} MB)"
        )
    print(
        f"=> one batch handles about W={gauge.max_safe_workload:.0f} "
        f"({gauge.num_trials} trials)\n"
    )

    # --- guideline 2: decreasing schedules ------------------------------
    # 1.5x the single-batch capacity: needs batching, but the total
    # residual memory still fits (BPPR keeps every walk's endpoint
    # resident, so the *total* workload is bounded too).
    workload = int(gauge.max_safe_workload * 1.5)
    print(f"scheduling a {workload}-walk job (1.5x the 1-batch capacity):\n")
    job = MultiProcessingJob(engine)

    candidates = {
        "equal 4-batch": equal_batches(workload, 4),
        "geometric r=0.5": geometric_batches(workload, 4, ratio=0.5),
        "geometric r=0.7": geometric_batches(workload, 4, ratio=0.7),
    }
    tuner = AutoTuner.for_engine(
        "pregel+", cluster, lambda w: bppr_task(graph, w), seed=3
    )
    candidates["trained planner"] = tuner.plan(workload)

    for label, schedule in candidates.items():
        sizes = [float(int(s)) for s in schedule]
        sizes[0] += workload - sum(sizes)  # absorb rounding
        metrics = job.run(
            bppr_task(graph, workload), batch_sizes=sizes, seed=3
        )
        rendered = ", ".join(f"{s:.0f}" for s in sizes)
        print(f"  {label:>16}: {metrics.time_label():>10}  [{rendered}]")

    print(
        "\nDecreasing schedules front-load the work while memory is free "
        "of residual\nresults — the paper's 'later batches should have "
        "smaller workloads'."
    )


if __name__ == "__main__":
    main()
