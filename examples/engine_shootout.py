#!/usr/bin/env python3
"""Engine shootout: one tradeoff does not fit all (Section 4).

Runs the same BPPR job family across all seven of the paper's VC-system
modes (plus the whole-graph mode of Section 4.9) and reports each
engine's optimal batch count — demonstrating the paper's core insight
that the best round-congestion tradeoff depends on the system's
implementation: mirroring, out-of-core spill, JVM memory bloat,
combining, and synchronisation all move the optimum.

Run:  python examples/engine_shootout.py
"""

from repro import ENGINE_NAMES, MultiProcessingJob, bppr_task, galaxy8, load_dataset

#: Workloads roughly equalising pressure per engine (the paper's
#: Figure 3d uses exactly this kind of per-system workload choice).
WORKLOADS = {
    "pregel+": 10240,
    "pregel+(mirror)": 160,
    "giraph": 2048,
    "giraph(async)": 1024,
    "giraph(split)": 8192,
    "graphd": 2048,
    "graphlab": 20480,
    "graphlab(async)": 512,
    "pregel+(wholegraph)": 10240,
}

BATCHES = (1, 2, 4, 8, 16)


def main() -> None:
    graph = load_dataset("dblp")
    cluster = galaxy8()
    print(f"dataset: {graph}")
    print(f"cluster: {cluster.describe()}\n")

    header = f"{'engine':<22}{'W':>7}  " + "".join(
        f"{f'b={b}':>10}" for b in BATCHES
    ) + f"{'best':>7}"
    print(header)
    print("-" * len(header))

    for engine_name in ENGINE_NAMES:
        workload = WORKLOADS[engine_name]
        job = MultiProcessingJob(engine_name, cluster)
        cells = []
        best = None
        for batches in BATCHES:
            metrics = job.run(bppr_task(graph, workload), num_batches=batches)
            cells.append(metrics.time_label())
            if not metrics.overloaded and (
                best is None or metrics.seconds < best.seconds
            ):
                best = metrics
        best_label = str(best.num_batches) if best else "none"
        print(
            f"{engine_name:<22}{workload:>7}  "
            + "".join(f"{cell:>10}" for cell in cells)
            + f"{best_label:>7}"
        )

    print(
        "\nObservations to look for (matching the paper's findings):\n"
        " * Pregel+ overloads at Full-Parallelism on its heavy workload\n"
        "   but not at 2+ batches — high parallelism can be fragile.\n"
        " * GraphD never overloads on memory (it spills), but small batch\n"
        "   counts saturate its disk instead.\n"
        " * Giraph needs more batches than Pregel+ at the same workload —\n"
        "   JVM object overhead shrinks the usable message headroom.\n"
        " * The whole-graph mode has no network traffic at all; its cost\n"
        "   is compute plus the final aggregation step.\n"
        " * giraph(split) caps per-superstep traffic inside the engine, so\n"
        "   Full-Parallelism becomes its best setting: superstep splitting\n"
        "   substitutes for workload batching.\n"
    )


if __name__ == "__main__":
    main()
