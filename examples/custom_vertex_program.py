#!/usr/bin/env python3
"""Writing your own vertex program: connected components + triangle-free
label propagation on the honest message-passing engine.

The reference engine implements the Pregel model of Section 2.1
literally — ``compute(ctx, messages)``, vote-to-halt, message combiners,
aggregators — so it doubles as a teaching tool and a harness for
algorithms the paper does not ship. This example implements:

* HashMin connected components (every vertex adopts the smallest id it
  has heard of; a classic BPPA from the Pregel+ literature);
* a degree-threshold label propagation using a custom aggregator to
  track convergence.

Run:  python examples/custom_vertex_program.py
"""

from collections import Counter

from repro import LocalPregelEngine, VertexProgram
from repro.graph.build import from_edge_list
from repro.graph.generators import chung_lu


class HashMinComponents(VertexProgram):
    """Connected components: propagate the minimum vertex id."""

    combiner = staticmethod(min)

    def initial_value(self, vertex_id, graph):
        return vertex_id

    def compute(self, ctx, messages):
        best = min(messages) if messages else ctx.value
        if ctx.superstep == 0:
            best = min(best, ctx.value)
        changed = best < ctx.value
        if ctx.superstep == 0 or changed:
            ctx.value = best
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()


class MajorityLabelPropagation(VertexProgram):
    """Semi-supervised labelling: adopt the majority label of your
    neighbourhood; ties keep the current label. An aggregator counts
    label flips per superstep so the run log shows convergence."""

    def __init__(self, seeds, rounds=10):
        self.seeds = dict(seeds)
        self.rounds = rounds

    def initial_value(self, vertex_id, graph):
        return self.seeds.get(vertex_id)

    def compute(self, ctx, messages):
        if ctx.superstep >= self.rounds:
            ctx.vote_to_halt()
            return
        labels = [lab for lab in messages if lab is not None]
        flipped = 0
        if labels:
            winner, _count = Counter(labels).most_common(1)[0]
            if winner != ctx.value:
                ctx.value = winner
                flipped = 1
        ctx.aggregate("flips", flipped)
        if ctx.value is not None:
            ctx.send_to_neighbors(ctx.value)
        # Stay active while the budget lasts (messages re-activate us).


def components_demo() -> None:
    print("=" * 68)
    print("HashMin connected components")
    print("=" * 68)
    graph = from_edge_list(
        [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)],
        num_vertices=9,  # vertex 8 is isolated
        directed=False,
    )
    run = LocalPregelEngine(graph).run(HashMinComponents())
    components = {}
    for vertex, root in enumerate(run.values):
        components.setdefault(root, []).append(vertex)
    print(f"supersteps: {run.supersteps}")
    for root, members in sorted(components.items()):
        print(f"  component {root}: {members}")
    assert len(components) == 4  # {0,1,2}, {3,4}, {5,6,7}, {8}


def label_propagation_demo() -> None:
    print()
    print("=" * 68)
    print("Majority label propagation with a convergence aggregator")
    print("=" * 68)
    graph = chung_lu(120, avg_degree=6.0, directed=False, seed=33)
    seeds = {0: "red", 60: "blue"}
    run = LocalPregelEngine(graph).run(
        MajorityLabelPropagation(seeds, rounds=8)
    )
    tally = Counter(v for v in run.values if v is not None)
    print(f"supersteps: {run.supersteps}")
    print(f"labels: {dict(tally)} (unlabelled: {run.values.count(None)})")
    print("flips per superstep:", [
        agg.get("flips", 0) for agg in run.aggregates_history
    ])


if __name__ == "__main__":
    components_demo()
    label_propagation_demo()
