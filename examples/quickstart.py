#!/usr/bin/env python3
"""Quickstart: the round-congestion tradeoff in five minutes.

This script is the library's "hello world". It:

1. loads the synthetic DBLP stand-in (Table 1 of the paper, scaled);
2. runs a Batch Personalized PageRank (BPPR) job on the simulated
   Pregel+ / Galaxy-8 testbed across batch counts 1..16;
3. prints the tradeoff the paper is about — Full-Parallelism (1 batch)
   floods the cluster while too many batches pay synchronisation
   overhead, with the sweet spot in between;
4. shows the honest vertex-centric programming model by running a real
   message-passing SSSP on a small graph.

Run:  python examples/quickstart.py
"""

from repro import (
    LocalPregelEngine,
    MultiProcessingJob,
    bppr_task,
    galaxy8,
    load_dataset,
)
from repro.graph.generators import grid_2d
from repro.tasks.vc_programs import SSSPProgram
from repro.units import format_count


def sweep_the_tradeoff() -> None:
    print("=" * 72)
    print("Part 1: the round-congestion tradeoff (BPPR on DBLP, Galaxy-8)")
    print("=" * 72)

    graph = load_dataset("dblp")
    print(f"dataset: {graph}")

    cluster = galaxy8()
    print(f"cluster: {cluster.describe()}\n")

    job = MultiProcessingJob("pregel+", cluster)
    workload = 10240  # walks per vertex — the paper's heavy setting

    print(f"BPPR workload: {workload} walks per vertex\n")
    print(f"{'batches':>8} {'time':>12} {'msgs/round':>14} {'rounds':>8}")
    best = None
    for batches in (1, 2, 4, 8, 16):
        metrics = job.run(bppr_task(graph, workload), num_batches=batches)
        if not metrics.overloaded and (
            best is None or metrics.seconds < best.seconds
        ):
            best = metrics
        print(
            f"{batches:>8} {metrics.time_label():>12} "
            f"{format_count(metrics.messages_per_round):>14} "
            f"{metrics.num_rounds:>8}"
        )
    print(
        f"\n-> optimum at {best.num_batches} batches: fewer rounds is NOT "
        "always faster.\n   Full-Parallelism congests the network and "
        "memory; many batches pay\n   per-round synchronisation. "
        "(Paper: Figures 2 and 4.)\n"
    )


def honest_vertex_centric() -> None:
    print("=" * 72)
    print("Part 2: the vertex-centric programming model, for real")
    print("=" * 72)

    graph = grid_2d(4, 4, directed=False)
    engine = LocalPregelEngine(graph)
    run = engine.run(SSSPProgram(source=0))

    print(
        "single-source shortest paths on a 4x4 grid via compute(v, msgs)\n"
        f"supersteps: {run.supersteps}, messages: {run.total_messages}\n"
    )
    for row in range(4):
        cells = "  ".join(
            f"{run.values[row * 4 + col]:>4.0f}" for col in range(4)
        )
        print(f"   {cells}")
    print("\nEach cell shows its hop distance from the top-left corner.")


if __name__ == "__main__":
    sweep_the_tradeoff()
    honest_vertex_centric()
